module Stats = M3v_sim.Stats
module H = Stats.Histogram

(* Typed metrics with (tile, act, cat) labels.  Like Trace, the registry
   is ambient and domain-local: emitters are no-ops (one DLS bool load,
   zero allocation) unless a registry is installed on the running domain.

   Parallel runs shard the registry per task: [shard_task] wraps a task
   so it records into a private shard, and returns a merge thunk the pool
   runs at [await] — in submission order, so merged output is
   byte-identical to a sequential run (counters and histograms commute;
   gauges resolve by simulated timestamp; series are merged by sort). *)

type key = { k_name : string; k_tile : int; k_act : int; k_cat : string }

type series = {
  ser_cap : int;
  ser_ts : int array;
  ser_val : float array;
  mutable ser_len : int; (* number of live samples, <= ser_cap *)
  mutable ser_head : int; (* next write position (ring) *)
}

type metric =
  | Counter of { mutable c : float }
  | Gauge of { mutable g : float; mutable g_ts : int }
  | Hist of H.t

type t = {
  table : (key, metric) Hashtbl.t;
  series : (key, series) Hashtbl.t;
  series_cap : int;
}

let default_series_cap = 512

let create ?(series_cap = default_series_cap) () =
  { table = Hashtbl.create 64; series = Hashtbl.create 16; series_cap }

(* --- ambient registry --- *)

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let enabled : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let on () = Domain.DLS.get enabled

let install r =
  Domain.DLS.set current (Some r);
  Domain.DLS.set enabled true

let uninstall () =
  Domain.DLS.set current None;
  Domain.DLS.set enabled false

let with_registry r f =
  install r;
  Fun.protect ~finally:uninstall f

(* --- recording --- *)

let find_or_add r key mk =
  match Hashtbl.find_opt r.table key with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.add r.table key m;
      m

let key ~name ~tile ~act ~cat =
  { k_name = name; k_tile = tile; k_act = act; k_cat = cat }

let counter_add ~name ?(tile = -1) ?(act = -1) ?(cat = "") v =
  match Domain.DLS.get current with
  | None -> ()
  | Some r -> (
      match
        find_or_add r (key ~name ~tile ~act ~cat) (fun () ->
            Counter { c = 0.0 })
      with
      | Counter c -> c.c <- c.c +. v
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter"))

let counter_incr ~name ?tile ?act ?cat () =
  counter_add ~name ?tile ?act ?cat 1.0

let gauge_set ~name ?(tile = -1) ?(act = -1) ?(cat = "") ~ts v =
  match Domain.DLS.get current with
  | None -> ()
  | Some r -> (
      match
        find_or_add r (key ~name ~tile ~act ~cat) (fun () ->
            Gauge { g = 0.0; g_ts = min_int })
      with
      | Gauge g ->
          g.g <- v;
          g.g_ts <- ts
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge"))

let observe ~name ?(tile = -1) ?(act = -1) ?(cat = "") v =
  match Domain.DLS.get current with
  | None -> ()
  | Some r -> (
      match
        find_or_add r (key ~name ~tile ~act ~cat) (fun () -> Hist (H.create ()))
      with
      | Hist h -> H.add h v
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram"))

(* --- time series --- *)

let series_push r k ~ts v =
  let ser =
    match Hashtbl.find_opt r.series k with
    | Some s -> s
    | None ->
        let s =
          {
            ser_cap = r.series_cap;
            ser_ts = Array.make r.series_cap 0;
            ser_val = Array.make r.series_cap 0.0;
            ser_len = 0;
            ser_head = 0;
          }
        in
        Hashtbl.add r.series k s;
        s
  in
  ser.ser_ts.(ser.ser_head) <- ts;
  ser.ser_val.(ser.ser_head) <- v;
  ser.ser_head <- (ser.ser_head + 1) mod ser.ser_cap;
  if ser.ser_len < ser.ser_cap then ser.ser_len <- ser.ser_len + 1

let series_points ser =
  (* Chronological order: the ring's oldest live sample first. *)
  let start =
    if ser.ser_len < ser.ser_cap then 0 else ser.ser_head
  in
  List.init ser.ser_len (fun i ->
      let j = (start + i) mod ser.ser_cap in
      (ser.ser_ts.(j), ser.ser_val.(j)))

(* Sample every gauge and counter of the ambient registry into its ring
   series.  Called from the engine observer hook (every 1024 simulation
   events), so sampling cadence is deterministic in simulated time. *)
let sample r ~ts =
  Hashtbl.iter
    (fun k m ->
      match m with
      | Gauge g -> series_push r k ~ts g.g
      | Counter c -> series_push r k ~ts c.c
      | Hist _ -> ())
    r.table

let sample_ambient ~ts =
  match Domain.DLS.get current with None -> () | Some r -> sample r ~ts

(* --- merging --- *)

let copy_metric = function
  | Counter c -> Counter { c = c.c }
  | Gauge g -> Gauge { g = g.g; g_ts = g.g_ts }
  | Hist h ->
      let h' = H.create () in
      H.merge ~into:h' h;
      Hist h'

let compare_key a b =
  match String.compare a.k_name b.k_name with
  | 0 -> (
      match Int.compare a.k_tile b.k_tile with
      | 0 -> (
          match Int.compare a.k_act b.k_act with
          | 0 -> String.compare a.k_cat b.k_cat
          | c -> c)
      | c -> c)
  | c -> c

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare_key

let merge ~into src =
  (* Iterate in sorted key order so merging is deterministic regardless of
     hash-table iteration order. *)
  List.iter
    (fun k ->
      let m = Hashtbl.find src.table k in
      match Hashtbl.find_opt into.table k with
      | None -> Hashtbl.add into.table k (copy_metric m)
      | Some existing -> (
          match (existing, m) with
          | Counter e, Counter c -> e.c <- e.c +. c.c
          | Hist e, Hist h -> H.merge ~into:e h
          | Gauge e, Gauge g ->
              (* Latest simulated timestamp wins; on a tie the merged-in
                 shard wins, which is deterministic because shards merge in
                 submission order. *)
              if g.g_ts >= e.g_ts then begin
                e.g <- g.g;
                e.g_ts <- g.g_ts
              end
          | _ ->
              invalid_arg
                ("Metrics.merge: type mismatch for " ^ k.k_name)))
    (sorted_keys src.table);
  List.iter
    (fun k ->
      let ser = Hashtbl.find src.series k in
      let pts = series_points ser in
      match Hashtbl.find_opt into.series k with
      | None ->
          List.iter (fun (ts, v) -> series_push into k ~ts v) pts
      | Some existing ->
          let merged =
            List.stable_sort
              (fun (a, _) (b, _) -> Int.compare a b)
              (series_points existing @ pts)
          in
          (* Keep the newest [cap] samples, preserving order. *)
          let n = List.length merged in
          let drop = max 0 (n - existing.ser_cap) in
          let kept = List.filteri (fun i _ -> i >= drop) merged in
          existing.ser_len <- 0;
          existing.ser_head <- 0;
          List.iter (fun (ts, v) -> series_push into k ~ts v) kept)
    (sorted_keys src.series)

(* [shard_task f] wraps [f] to run against a fresh shard (whatever domain
   executes it — the pool's helping-await may run it on the submitter),
   and returns the thunk that folds the shard into the registry ambient at
   submission time.  [None] when metrics are off, so the pool adds zero
   overhead in plain runs. *)
let shard_task f =
  match Domain.DLS.get current with
  | None -> None
  | Some parent ->
      let shard = create ~series_cap:parent.series_cap () in
      let wrapped () =
        let saved = Domain.DLS.get current in
        let saved_on = Domain.DLS.get enabled in
        install shard;
        Fun.protect
          ~finally:(fun () ->
            Domain.DLS.set current saved;
            Domain.DLS.set enabled saved_on)
          f
      in
      Some (wrapped, fun () -> merge ~into:parent shard)

(* --- export --- *)

type snapshot_row = {
  name : string;
  tile : int;
  act : int;
  cat : string;
  metric : metric;
  points : (int * float) list;
}

let rows r =
  sorted_keys r.table
  |> List.map (fun k ->
         {
           name = k.k_name;
           tile = k.k_tile;
           act = k.k_act;
           cat = k.k_cat;
           metric = Hashtbl.find r.table k;
           points =
             (match Hashtbl.find_opt r.series k with
             | Some ser -> series_points ser
             | None -> []);
         })

let json_float f =
  (* All recorded values are finite; %.17g round-trips exactly and is
     deterministic across runs. *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let add_labels b row =
  Buffer.add_string b "\"name\":\"";
  Chrome.escape_into b row.name;
  Buffer.add_string b (Printf.sprintf "\",\"tile\":%d,\"act\":%d" row.tile row.act);
  Buffer.add_string b ",\"cat\":\"";
  Chrome.escape_into b row.cat;
  Buffer.add_string b "\""

let to_buffer r =
  let b = Buffer.create 16384 in
  let rows = rows r in
  let section name keep emit =
    Buffer.add_string b (Printf.sprintf "\"%s\":[" name);
    let first = ref true in
    List.iter
      (fun row ->
        if keep row then begin
          if !first then first := false else Buffer.add_string b ",\n";
          emit row
        end)
      rows;
    Buffer.add_string b "]"
  in
  Buffer.add_string b "{\"schema_version\":1,\n";
  section "counters"
    (fun row -> match row.metric with Counter _ -> true | _ -> false)
    (fun row ->
      Buffer.add_char b '{';
      add_labels b row;
      (match row.metric with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf ",\"value\":%s" (json_float c.c))
      | _ -> assert false);
      Buffer.add_char b '}');
  Buffer.add_string b ",\n";
  section "gauges"
    (fun row -> match row.metric with Gauge _ -> true | _ -> false)
    (fun row ->
      Buffer.add_char b '{';
      add_labels b row;
      (match row.metric with
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf ",\"value\":%s,\"ts_ps\":%d" (json_float g.g)
               g.g_ts)
      | _ -> assert false);
      Buffer.add_char b '}');
  Buffer.add_string b ",\n";
  section "histograms"
    (fun row -> match row.metric with Hist _ -> true | _ -> false)
    (fun row ->
      Buffer.add_char b '{';
      add_labels b row;
      (match row.metric with
      | Hist h ->
          Buffer.add_string b
            (Printf.sprintf
               ",\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s"
               (H.count h)
               (json_float (if H.count h = 0 then 0.0 else H.mean h))
               (json_float (H.percentile h 50.0))
               (json_float (H.percentile h 90.0))
               (json_float (H.percentile h 99.0))
               (json_float (H.max_value h)))
      | _ -> assert false);
      Buffer.add_char b '}');
  Buffer.add_string b ",\n";
  section "series"
    (fun row -> row.points <> [])
    (fun row ->
      Buffer.add_char b '{';
      add_labels b row;
      Buffer.add_string b ",\"points\":[";
      List.iteri
        (fun i (ts, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%d,%s]" ts (json_float v)))
        row.points;
      Buffer.add_string b "]}");
  Buffer.add_string b "}\n";
  b

let to_json r = Buffer.contents (to_buffer r)

let write_file path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (to_buffer r))

(* --- text report --- *)

let label_of row =
  let b = Buffer.create 32 in
  Buffer.add_string b row.name;
  if row.tile >= 0 then Buffer.add_string b (Printf.sprintf "{tile=%d" row.tile)
  else if row.act >= 0 || row.cat <> "" then Buffer.add_string b "{";
  let opened = row.tile >= 0 || row.act >= 0 || row.cat <> "" in
  if row.act >= 0 then
    Buffer.add_string b
      (Printf.sprintf "%sact=%d" (if row.tile >= 0 then "," else "") row.act);
  if row.cat <> "" then
    Buffer.add_string b
      (Printf.sprintf "%s%s"
         (if row.tile >= 0 || row.act >= 0 then "," else "")
         row.cat);
  if opened then Buffer.add_char b '}';
  Buffer.contents b

let print fmt r =
  let rows = rows r in
  let counters =
    List.filter_map
      (fun row ->
        match row.metric with Counter c -> Some (row, c.c) | _ -> None)
      rows
  in
  let gauges =
    List.filter_map
      (fun row ->
        match row.metric with Gauge g -> Some (row, g.g) | _ -> None)
      rows
  in
  let hists =
    List.filter_map
      (fun row -> match row.metric with Hist h -> Some (row, h) | _ -> None)
      rows
  in
  Format.fprintf fmt "@.======== metrics ========@.";
  if counters <> [] then begin
    Format.fprintf fmt "@.-- counters --@.";
    List.iter
      (fun (row, v) ->
        Format.fprintf fmt "  %-52s %14.0f@." (label_of row) v)
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf fmt "@.-- gauges (last value) --@.";
    List.iter
      (fun (row, v) -> Format.fprintf fmt "  %-52s %14.2f@." (label_of row) v)
      gauges
  end;
  if hists <> [] then begin
    Format.fprintf fmt "@.-- histograms --@.";
    Format.fprintf fmt "  %-40s %8s %12s %12s %12s@." "histogram" "n" "mean"
      "p50" "p99";
    List.iter
      (fun (row, h) ->
        if H.count h > 0 then
          Format.fprintf fmt "  %-40s %8d %12.1f %12.1f %12.1f@."
            (label_of row) (H.count h) (H.mean h) (H.percentile h 50.0)
            (H.percentile h 99.0))
      hists
  end;
  Format.fprintf fmt "@."
