module Stats = M3v_sim.Stats

type value = I of int | F of float | S of string

type phase = Complete | Instant | Counter | Flow_start | Flow_step | Flow_end

type event = {
  ev_cat : string;
  ev_name : string;
  ev_ph : phase;
  ev_ts : int; (* simulated time, ps *)
  ev_dur : int; (* Complete events only, ps *)
  ev_tile : int; (* -1: not tile-attributed *)
  ev_act : int; (* -1: not activity-attributed *)
  ev_id : int; (* flow id (message uid) for Flow_* events; -1 otherwise *)
  ev_args : (string * value) list;
}

type sink = {
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  max_events : int;
  mutable dropped : int;
  hists : (string, Stats.Histogram.t) Hashtbl.t;
  tallies : (string, int ref * int ref) Hashtbl.t;
      (* "tile<i>/<cat>/<name>" -> (count, summed duration ps) *)
}

let make ?(max_events = 500_000) () =
  {
    events = [];
    n_events = 0;
    max_events;
    dropped = 0;
    hists = Hashtbl.create 16;
    tallies = Hashtbl.create 64;
  }

(* The sink is ambient so tracepoints need no plumbing through every
   constructor — but it is domain-local, not process-global: experiment
   tasks fanned out over a Domain pool each install their own sink without
   seeing each other's.  [enabled] mirrors the option to keep the disabled
   check a single DLS load; every tracepoint below returns immediately
   (allocating nothing) when no sink is installed on this domain. *)
let current : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let enabled : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let on () = Domain.DLS.get enabled

(* Run-local allocator resets (e.g. the message uid counter).  Trace
   output must be a pure function of the traced run, but flow events
   embed ids drawn from counters that otherwise keep counting across
   runs on the same domain; resetting them at [install] makes two
   identical traced runs byte-identical.  Registration happens at module
   init on the main domain, before any pool exists, so a plain ref is
   safe. *)
let install_hooks : (unit -> unit) list ref = ref []
let at_install f = install_hooks := f :: !install_hooks

let install s =
  List.iter (fun f -> f ()) !install_hooks;
  Domain.DLS.set current (Some s);
  Domain.DLS.set enabled true

let uninstall () =
  Domain.DLS.set current None;
  Domain.DLS.set enabled false

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

let events s = List.rev s.events
let event_count s = s.n_events
let dropped s = s.dropped
let max_events s = s.max_events

let histogram s name =
  match Hashtbl.find_opt s.hists name with
  | Some h -> h
  | None ->
      let h = Stats.Histogram.create () in
      Hashtbl.add s.hists name h;
      h

let histograms s =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) s.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let tallies s =
  Hashtbl.fold (fun k (n, d) acc -> (k, !n, !d) :: acc) s.tallies []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let tally s ~tile ~cat ~name ~dur =
  let key =
    if tile < 0 then Printf.sprintf "-/%s/%s" cat name
    else Printf.sprintf "tile%d/%s/%s" tile cat name
  in
  let n, d =
    match Hashtbl.find_opt s.tallies key with
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0) in
        Hashtbl.add s.tallies key cell;
        cell
  in
  incr n;
  d := !d + dur

let push s ev =
  tally s ~tile:ev.ev_tile ~cat:ev.ev_cat ~name:ev.ev_name ~dur:ev.ev_dur;
  if s.n_events >= s.max_events then s.dropped <- s.dropped + 1
  else begin
    s.events <- ev :: s.events;
    s.n_events <- s.n_events + 1
  end

let complete ~cat ~name ?(tile = -1) ?(act = -1) ~ts ~dur ?(args = []) () =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      push s
        {
          ev_cat = cat;
          ev_name = name;
          ev_ph = Complete;
          ev_ts = ts;
          ev_dur = dur;
          ev_tile = tile;
          ev_act = act;
          ev_id = -1;
          ev_args = args;
        }

let instant ~cat ~name ?(tile = -1) ?(act = -1) ~ts ?(args = []) () =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      push s
        {
          ev_cat = cat;
          ev_name = name;
          ev_ph = Instant;
          ev_ts = ts;
          ev_dur = 0;
          ev_tile = tile;
          ev_act = act;
          ev_id = -1;
          ev_args = args;
        }

let counter ~cat ~name ?(tile = -1) ?(act = -1) ~ts ~value () =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      push s
        {
          ev_cat = cat;
          ev_name = name;
          ev_ph = Counter;
          ev_ts = ts;
          ev_dur = 0;
          ev_tile = tile;
          ev_act = act;
          ev_id = -1;
          ev_args = [ (name, F value) ];
        }

(* Flow events share one (cat, name, id) triple across their lifetime —
   Chrome matches s/t/f by that triple — so the point kind (issue, inject,
   deliver, fetch) travels in [args] instead of the name. *)
let flow ph ~cat ~name ~id ?(tile = -1) ?(act = -1) ~ts ?(args = []) () =
  match Domain.DLS.get current with
  | None -> ()
  | Some s ->
      push s
        {
          ev_cat = cat;
          ev_name = name;
          ev_ph = ph;
          ev_ts = ts;
          ev_dur = 0;
          ev_tile = tile;
          ev_act = act;
          ev_id = id;
          ev_args = args;
        }

let flow_start = flow Flow_start
let flow_step = flow Flow_step
let flow_end = flow Flow_end

let latency name v =
  match Domain.DLS.get current with
  | None -> ()
  | Some s -> Stats.Histogram.add (histogram s name) v

let latency_int name v = latency name (float_of_int v)

(* Sample the engine's dispatch loop into "engine" counter tracks.  Wired
   by the system constructor when a sink is installed, so the engine itself
   stays free of an obs dependency. *)
let attach_engine engine =
  if on () then
    M3v_sim.Engine.set_observer engine
      (Some
         (fun now pending ->
           counter ~cat:"engine" ~name:"pending_events" ~ts:now
             ~value:(float_of_int pending) ()))
