(* Combined engine observer: one hook samples both the trace sink (queue
   depth counter track) and the metrics registry (gauge/counter ring
   series).  Wired by the system constructor so the engine itself stays
   free of an obs dependency. *)

let attach_engine engine =
  if Trace.on () || Metrics.on () then
    M3v_sim.Engine.set_observer engine
      (Some
         (fun now pending ->
           if Trace.on () then
             Trace.counter ~cat:"engine" ~name:"pending_events" ~ts:now
               ~value:(float_of_int pending) ();
           if Metrics.on () then begin
             Metrics.gauge_set ~name:"engine/pending_events" ~ts:now
               (float_of_int pending);
             Metrics.sample_ambient ~ts:now
           end))
