(* Chrome trace-event JSON (the "trace event format" consumed by
   chrome://tracing and Perfetto).  Timestamps are microseconds; we emit
   fractional microseconds from picosecond simulated time.  Tiles map to
   pids and activities to tids so the viewer groups tracks per tile;
   events without a tile/activity go to a dedicated "global" pid/tid so
   they can never collide with real tile 0 / activity 0. *)

let global_pid = 1_000_000
let global_tid = 1_000_000

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape_into = escape

let add_value b = function
  | Trace.I i -> Buffer.add_string b (string_of_int i)
  | Trace.F f -> Buffer.add_string b (Printf.sprintf "%g" f)
  | Trace.S s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'

let us_of_ps ps = float_of_int ps /. 1e6

let pid_of ev = if ev.Trace.ev_tile < 0 then global_pid else ev.Trace.ev_tile
let tid_of ev = if ev.Trace.ev_act < 0 then global_tid else ev.Trace.ev_act

let add_event b (ev : Trace.event) =
  Buffer.add_string b "{\"name\":\"";
  escape b ev.Trace.ev_name;
  Buffer.add_string b "\",\"cat\":\"";
  escape b ev.Trace.ev_cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b
    (match ev.Trace.ev_ph with
    | Trace.Complete -> "X"
    | Trace.Instant -> "i"
    | Trace.Counter -> "C"
    | Trace.Flow_start -> "s"
    | Trace.Flow_step -> "t"
    | Trace.Flow_end -> "f");
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.6f" (us_of_ps ev.Trace.ev_ts));
  (match ev.Trace.ev_ph with
  | Trace.Complete ->
      Buffer.add_string b
        (Printf.sprintf ",\"dur\":%.6f" (us_of_ps ev.Trace.ev_dur))
  | Trace.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Trace.Counter -> ()
  | Trace.Flow_start | Trace.Flow_step ->
      Buffer.add_string b (Printf.sprintf ",\"id\":%d" ev.Trace.ev_id)
  | Trace.Flow_end ->
      (* "bp":"e" binds the arrow to the enclosing slice at this point's
         timestamp rather than the next slice, which is what we want for a
         fetch that terminates the flow. *)
      Buffer.add_string b
        (Printf.sprintf ",\"id\":%d,\"bp\":\"e\"" ev.Trace.ev_id));
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d" (pid_of ev));
  Buffer.add_string b (Printf.sprintf ",\"tid\":%d" (tid_of ev));
  (match ev.Trace.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add_value b v)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

(* Metadata (ph "M") events naming each pid/tid, so Perfetto shows
   "tile 3" / "act 2" instead of bare numbers.  Emitted first, sorted by
   (pid, tid) for deterministic output. *)

let add_meta b ~ph_name ~pid ?tid ~label () =
  Buffer.add_string b "{\"name\":\"";
  Buffer.add_string b ph_name;
  Buffer.add_string b "\",\"ph\":\"M\"";
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d" pid);
  (match tid with
  | Some t -> Buffer.add_string b (Printf.sprintf ",\"tid\":%d" t)
  | None -> ());
  Buffer.add_string b ",\"args\":{\"name\":\"";
  escape b label;
  Buffer.add_string b "\"}}"

let act_label act =
  if act = global_tid then "(unattributed)"
  else if act = 0xFFFF then "(no act)"
  else if act = 0xFFFE then "tilemux"
  else Printf.sprintf "act %d" act

let add_metadata b sink =
  let module IS = Set.Make (Int) in
  let module IPS = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let pids, tids =
    List.fold_left
      (fun (pids, tids) ev ->
        let pid = pid_of ev and tid = tid_of ev in
        (IS.add pid pids, IPS.add (pid, tid) tids))
      (IS.empty, IPS.empty) (Trace.events sink)
  in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  IS.iter
    (fun pid ->
      sep ();
      let label =
        if pid = global_pid then "global" else Printf.sprintf "tile %d" pid
      in
      add_meta b ~ph_name:"process_name" ~pid ~label ())
    pids;
  IPS.iter
    (fun (pid, tid) ->
      sep ();
      add_meta b ~ph_name:"thread_name" ~pid ~tid ~label:(act_label tid) ())
    tids;
  not !first

let to_buffer sink =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let has_meta = add_metadata b sink in
  List.iteri
    (fun i ev ->
      if i > 0 || has_meta then Buffer.add_string b ",\n";
      add_event b ev)
    (Trace.events sink);
  Buffer.add_string b "]}\n";
  b

let write oc sink = Buffer.output_buffer oc (to_buffer sink)

let write_file path sink =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc sink)
