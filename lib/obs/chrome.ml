(* Chrome trace-event JSON (the "trace event format" consumed by
   chrome://tracing and Perfetto).  Timestamps are microseconds; we emit
   fractional microseconds from picosecond simulated time.  Tiles map to
   pids and activities to tids so the viewer groups tracks per tile. *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_value b = function
  | Trace.I i -> Buffer.add_string b (string_of_int i)
  | Trace.F f -> Buffer.add_string b (Printf.sprintf "%g" f)
  | Trace.S s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'

let us_of_ps ps = float_of_int ps /. 1e6

let add_event b (ev : Trace.event) =
  Buffer.add_string b "{\"name\":\"";
  escape b ev.Trace.ev_name;
  Buffer.add_string b "\",\"cat\":\"";
  escape b ev.Trace.ev_cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b
    (match ev.Trace.ev_ph with
    | Trace.Complete -> "X"
    | Trace.Instant -> "i"
    | Trace.Counter -> "C");
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.6f" (us_of_ps ev.Trace.ev_ts));
  (match ev.Trace.ev_ph with
  | Trace.Complete ->
      Buffer.add_string b
        (Printf.sprintf ",\"dur\":%.6f" (us_of_ps ev.Trace.ev_dur))
  | Trace.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Trace.Counter -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d" (max 0 ev.Trace.ev_tile));
  Buffer.add_string b (Printf.sprintf ",\"tid\":%d" (max 0 ev.Trace.ev_act));
  (match ev.Trace.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add_value b v)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_buffer sink =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      add_event b ev)
    (Trace.events sink);
  Buffer.add_string b "]}\n";
  b

let write oc sink = Buffer.output_buffer oc (to_buffer sink)

let write_file path sink =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc sink)
