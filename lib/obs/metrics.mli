(** Typed metrics registry: counters, gauges, and histograms labelled by
    (tile, activity, category), with ring-buffer time-series sampling and
    deterministic text/JSON export.

    Like {!Trace}, the registry is ambient and domain-local: emitters cost
    one boolean load and allocate nothing when no registry is installed,
    so instrumented hot paths are free in ordinary runs.

    Parallel experiment runs shard the registry per pool task via
    {!shard_task}; the pool merges each shard back at [await] in
    submission order, so [--jobs N] output is byte-identical to a
    sequential run. *)

type t

(** [create ()] makes an empty registry.  Each gauge/counter keeps at most
    [series_cap] time-series samples (a ring of the newest). *)
val create : ?series_cap:int -> unit -> t

val default_series_cap : int

(** {1 Ambient registry} *)

val install : t -> unit
val uninstall : unit -> unit
val with_registry : t -> (unit -> 'a) -> 'a

(** Whether a registry is installed on this domain.  Hot call sites check
    this before computing emitter arguments. *)
val on : unit -> bool

(** {1 Emitters} — no-ops when no registry is installed.  A name must keep
    one metric type for the whole run; mixing types raises
    [Invalid_argument]. *)

val counter_add :
  name:string -> ?tile:int -> ?act:int -> ?cat:string -> float -> unit

val counter_incr :
  name:string -> ?tile:int -> ?act:int -> ?cat:string -> unit -> unit

(** [gauge_set ~name ~ts v] records the gauge's current value at simulated
    time [ts] (ps).  Merges resolve concurrent shards by latest [ts]. *)
val gauge_set :
  name:string -> ?tile:int -> ?act:int -> ?cat:string -> ts:int -> float -> unit

(** Record a sample into a labelled histogram. *)
val observe : name:string -> ?tile:int -> ?act:int -> ?cat:string -> float -> unit

(** {1 Sampling} *)

(** Push the current value of every counter and gauge into its ring
    series, stamped [ts].  Wired to the engine observer (every 1024
    simulation events) so cadence is deterministic in simulated time. *)
val sample : t -> ts:int -> unit

(** {!sample} on this domain's ambient registry, if any. *)
val sample_ambient : ts:int -> unit

(** {1 Merging and sharding} *)

(** [merge ~into src] folds [src] into [into]: counters add, histograms
    merge, gauges keep the value with the later simulated timestamp
    ([src] wins ties), series are merge-sorted by timestamp and truncated
    to the ring capacity.  Deterministic given a deterministic merge
    order. *)
val merge : into:t -> t -> unit

(** [shard_task f] — [None] when metrics are off.  Otherwise wraps [f] so
    it records into a fresh shard no matter which domain runs it, and
    returns the thunk that merges the shard into the registry that was
    ambient at wrap time.  Used by [Par.Pool.submit]; the merge thunk runs
    at [await], in submission order. *)
val shard_task : (unit -> 'a) -> ((unit -> 'a) * (unit -> unit)) option

(** {1 Export} *)

(** Deterministic JSON: metrics sorted by (name, tile, act, cat);
    histograms exported as count/mean/p50/p90/p99/max; series as
    [[ts_ps, value]] pairs. *)
val to_buffer : t -> Buffer.t

val to_json : t -> string
val write_file : string -> t -> unit

(** Human-readable tables (counters, gauges, histograms). *)
val print : Format.formatter -> t -> unit
