(** Critical-path analysis of causal flows.

    {!analyze} reconstructs every message's end-to-end latency from the
    flow points recorded by the DTU/NoC/mux tracepoints and splits it
    into the paper's segments: sender command (MMIO issue + credit
    stalls), NoC transit, mux scheduling delay, activity-switch cost,
    receive-buffer wait, then — for request/reply pairs — server
    processing and the whole reply leg.  Segment boundaries are clamped
    monotone, so each flow's segments sum {e exactly} (in simulated ps)
    to its end-to-end latency.

    {!folded} additionally renders the sink's spans as folded stacks
    ("frame;frame weight" lines, weight = simulated self-time in ps) for
    flamegraph tools. *)

type flow_prof = {
  fp_id : int;  (** message uid *)
  fp_e2e : int;  (** end-to-end latency, ps *)
  fp_segments : (string * int) list;
      (** ordered (segment, ps); sums exactly to [fp_e2e] *)
}

type report = {
  rpcs : flow_prof list;  (** request/reply pairs, by request uid *)
  oneways : flow_prof list;  (** complete flows with no reply *)
  incomplete : int;  (** flows issued but never fetched *)
}

(** Segment names, in order, as they appear in [fp_segments]. *)
val rpc_segments : string list

val oneway_segments : string list

val analyze : Trace.sink -> report

(** Mean simulated ps per segment over all complete flows (RPC and
    one-way pooled), in {!rpc_segments} order; segments no flow carries
    are omitted.  This is the input to the load harness' bottleneck
    attribution. *)
val segment_means : report -> (string * float) list

(** Per-segment p50/p99/mean/share tables for RPC and one-way flows. *)
val print : Format.formatter -> report -> unit

(** Folded-stack (flamegraph collapsed) export of all Complete spans,
    grouped per tile and activity, weighted by simulated self-time ps. *)
val folded : Trace.sink -> Buffer.t

val write_folded : string -> Trace.sink -> unit
