(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Spans become ["ph":"X"] complete events, instants ["ph":"i"], counters
    ["ph":"C"]; tiles map to pids and activities to tids; timestamps are
    emitted in (fractional) microseconds. *)

val to_buffer : Trace.sink -> Buffer.t
val write : out_channel -> Trace.sink -> unit
val write_file : string -> Trace.sink -> unit
