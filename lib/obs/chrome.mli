(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Spans become ["ph":"X"] complete events, instants ["ph":"i"], counters
    ["ph":"C"], and causal flows ["ph":"s"/"t"/"f"] (Perfetto draws arrows
    between the points of one flow id); tiles map to pids and activities
    to tids; timestamps are emitted in (fractional) microseconds.

    Events without a tile or activity ([ev_tile]/[ev_act] = -1) are
    assigned the dedicated {!global_pid}/{!global_tid} instead of being
    clamped onto tile 0, and ["process_name"]/["thread_name"] metadata
    events label every track. *)

(** The pid given to events with [ev_tile = -1] (and the tid for
    [ev_act = -1]), labelled "global" via metadata. *)
val global_pid : int

val global_tid : int

val to_buffer : Trace.sink -> Buffer.t
val write : out_channel -> Trace.sink -> unit
val write_file : string -> Trace.sink -> unit

(** JSON-escape [s] into the buffer (shared with the metrics exporter). *)
val escape_into : Buffer.t -> string -> unit
