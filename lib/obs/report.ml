module Stats = M3v_sim.Stats
module H = Stats.Histogram

(* Human-readable summaries of a trace sink: latency percentiles per
   histogram and a per-tile/per-category breakdown of where simulated time
   went. *)

let us ps = ps /. 1e6

let print_histograms fmt sink =
  match Trace.histograms sink with
  | [] -> ()
  | hists ->
      Format.fprintf fmt "@.-- latency histograms (us) --@.";
      Format.fprintf fmt "  %-24s %10s %10s %10s %10s %10s %10s@." "histogram"
        "n" "mean" "p50" "p90" "p99" "max";
      List.iter
        (fun (name, h) ->
          if H.count h > 0 then
            Format.fprintf fmt
              "  %-24s %10d %10.3f %10.3f %10.3f %10.3f %10.3f@." name
              (H.count h) (us (H.mean h))
              (us (H.percentile h 50.0))
              (us (H.percentile h 90.0))
              (us (H.percentile h 99.0))
              (us (H.max_value h)))
        hists

let print_tallies fmt sink =
  match Trace.tallies sink with
  | [] -> ()
  | tallies ->
      Format.fprintf fmt "@.-- per-tile event summary --@.";
      Format.fprintf fmt "  %-40s %10s %14s@." "tile/category/event" "count"
        "total us";
      List.iter
        (fun (key, n, dur_ps) ->
          Format.fprintf fmt "  %-40s %10d %14.3f@." key n
            (us (float_of_int dur_ps)))
        tallies

let print fmt sink =
  Format.fprintf fmt "@.======== trace summary ========@.";
  Format.fprintf fmt "  events recorded: %d@." (Trace.event_count sink);
  let d = Trace.dropped sink in
  if d > 0 then
    Format.fprintf fmt
      "  WARNING: %d events dropped (cap %d) — the trace is truncated@." d
      (Trace.max_events sink);
  print_histograms fmt sink;
  print_tallies fmt sink;
  Format.fprintf fmt "@."
