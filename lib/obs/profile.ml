module Stats = M3v_sim.Stats

(* Critical-path analysis over a trace sink.

   Flow points (issue → inject → deliver → fetch, one flow per message
   uid) give each message's end-to-end timeline; mux "run" spans and
   "ctx_switch" instants on the receiving tile let us split the
   deliver→fetch wait into scheduling delay, activity-switch cost, and
   genuine receive-buffer wait.  Segment boundaries are clamped to be
   monotone, so segments are telescoping differences and always sum
   exactly (in simulated ps) to the end-to-end latency. *)

type point = { p_ts : int; p_tile : int; p_act : int }

type flow = {
  mutable f_issue : point option;
  mutable f_inject : point option;
  mutable f_deliver : point option;
  mutable f_fetch : point option;
  mutable f_parent : int option; (* request uid, for reply flows *)
}

type flow_prof = {
  fp_id : int;
  fp_e2e : int; (* ps *)
  fp_segments : (string * int) list; (* sums exactly to fp_e2e *)
}

type report = {
  rpcs : flow_prof list;
  oneways : flow_prof list;
  incomplete : int; (* flows started but never fetched *)
}

let oneway_segments =
  [ "sender_cmd"; "noc_transit"; "sched_wait"; "ctx_switch"; "buffer_wait" ]

let rpc_segments = oneway_segments @ [ "server"; "reply" ]

(* --- collection --- *)

let arg_str key args =
  List.find_map
    (function k, Trace.S s when k = key -> Some s | _ -> None)
    args

let arg_int key args =
  List.find_map
    (function k, Trace.I i when k = key -> Some i | _ -> None)
    args

type ctx = {
  flows : (int, flow) Hashtbl.t;
  runs : (int * int, (int * int) list ref) Hashtbl.t;
      (* (tile, act) -> (start, dur) spans, chronological *)
  switches : (int, int list ref) Hashtbl.t; (* tile -> instant ts, chrono *)
}

let flow_of ctx id =
  match Hashtbl.find_opt ctx.flows id with
  | Some f -> f
  | None ->
      let f =
        {
          f_issue = None;
          f_inject = None;
          f_deliver = None;
          f_fetch = None;
          f_parent = None;
        }
      in
      Hashtbl.add ctx.flows id f;
      f

let push_assoc tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let collect sink =
  let ctx =
    {
      flows = Hashtbl.create 256;
      runs = Hashtbl.create 64;
      switches = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.ev_ph with
      | Trace.Flow_start | Trace.Flow_step | Trace.Flow_end ->
          let f = flow_of ctx ev.ev_id in
          let p = { p_ts = ev.ev_ts; p_tile = ev.ev_tile; p_act = ev.ev_act } in
          (match arg_int "req" ev.ev_args with
          | Some req -> f.f_parent <- Some req
          | None -> ());
          (match arg_str "kind" ev.ev_args with
          | Some "issue" -> if f.f_issue = None then f.f_issue <- Some p
          | Some "inject" -> if f.f_inject = None then f.f_inject <- Some p
          | Some "deliver" -> if f.f_deliver = None then f.f_deliver <- Some p
          | Some "fetch" -> f.f_fetch <- Some p
          | _ -> ())
      | Trace.Complete
        when ev.ev_cat = "mux" && ev.ev_name = "run" && ev.ev_tile >= 0
             && ev.ev_act >= 0 ->
          push_assoc ctx.runs (ev.ev_tile, ev.ev_act) (ev.ev_ts, ev.ev_dur)
      | Trace.Instant when ev.ev_cat = "mux" && ev.ev_name = "ctx_switch" ->
          if ev.ev_tile >= 0 then push_assoc ctx.switches ev.ev_tile ev.ev_ts
      | _ -> ())
    (Trace.events sink);
  ctx

(* --- wait decomposition --- *)

(* Split the deliver→fetch interval [td, tf] on the receiving (tile, act)
   into (sched_wait, ctx_switch, buffer_wait).  The mux "run" span
   containing the fetch tells us when the receiver started running; the
   latest "ctx_switch" instant at or before that run start marks when the
   mux decided to dispatch it.  Without a containing run span (e.g. a
   fetch on the kernel tile, which has no mux) the whole interval is
   buffer wait.  All boundaries are clamped into [td, tf] so the three
   parts always sum to tf - td. *)
let wait_breakdown ctx ~tile ~act ~td ~tf =
  let run_start =
    match Hashtbl.find_opt ctx.runs (tile, act) with
    | None -> None
    | Some spans ->
        List.find_map
          (fun (ts, dur) -> if ts <= tf && tf <= ts + dur then Some ts else None)
          !spans
  in
  match run_start with
  | None -> (0, 0, tf - td)
  | Some rs ->
      let sw =
        match Hashtbl.find_opt ctx.switches tile with
        | None -> rs
        | Some instants -> (
            (* newest first *)
            match List.find_opt (fun ts -> ts <= rs) !instants with
            | Some ts -> ts
            | None -> rs)
      in
      let sw = min (max sw td) tf in
      let rs = min (max rs sw) tf in
      (sw - td, rs - sw, tf - rs)

(* --- segment assembly --- *)

(* Clamped, defaulted timeline of one message leg: issue <= inject <=
   deliver <= fetch.  Missing interior points (e.g. kernel-injected
   messages have no inject) collapse their segment to zero. *)
let leg_times f =
  match (f.f_issue, f.f_fetch) with
  | Some i, Some fe ->
      let ts_of d = function Some p -> p.p_ts | None -> d in
      let t_issue = i.p_ts in
      let t_inject = max t_issue (ts_of t_issue f.f_inject) in
      let t_deliver = max t_inject (ts_of t_inject f.f_deliver) in
      let t_fetch = max t_deliver fe.p_ts in
      Some (t_issue, t_inject, t_deliver, t_fetch, fe)
  | _ -> None

let leg_segments ctx f =
  match leg_times f with
  | None -> None
  | Some (t_issue, t_inject, t_deliver, t_fetch, fetch_pt) ->
      let sched, switch, buffer =
        wait_breakdown ctx ~tile:fetch_pt.p_tile ~act:fetch_pt.p_act
          ~td:t_deliver ~tf:t_fetch
      in
      Some
        ( [
            ("sender_cmd", t_inject - t_issue);
            ("noc_transit", t_deliver - t_inject);
            ("sched_wait", sched);
            ("ctx_switch", switch);
            ("buffer_wait", buffer);
          ],
          t_issue,
          t_fetch )

let analyze sink =
  let ctx = collect sink in
  (* Which flows are requests (some reply names them as parent)? *)
  let replied = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id f ->
      match f.f_parent with
      | Some req -> if Hashtbl.mem ctx.flows req then Hashtbl.replace replied req id
      | None -> ())
    ctx.flows;
  let rpcs = ref [] and oneways = ref [] and incomplete = ref 0 in
  Hashtbl.iter
    (fun id f ->
      if f.f_parent <> None then ()
        (* reply legs are folded into their request's profile *)
      else
        match (leg_segments ctx f, Hashtbl.find_opt replied id) with
        | None, _ -> if f.f_issue <> None then incr incomplete
        | Some (segs, t_issue, t_fetch), None ->
            oneways :=
              { fp_id = id; fp_e2e = t_fetch - t_issue; fp_segments = segs }
              :: !oneways
        | Some (segs, t_issue, t_fetch), Some reply_id -> (
            let r = Hashtbl.find ctx.flows reply_id in
            match (r.f_issue, leg_times r) with
            | Some ri, Some (_, _, _, r_fetch, _) ->
                let t_reply_issue = max t_fetch ri.p_ts in
                let t_reply_fetch = max t_reply_issue r_fetch in
                let segs =
                  segs
                  @ [
                      ("server", t_reply_issue - t_fetch);
                      ("reply", t_reply_fetch - t_reply_issue);
                    ]
                in
                rpcs :=
                  {
                    fp_id = id;
                    fp_e2e = t_reply_fetch - t_issue;
                    fp_segments = segs;
                  }
                  :: !rpcs
            | _ ->
                (* reply never completed; profile the request leg alone *)
                oneways :=
                  { fp_id = id; fp_e2e = t_fetch - t_issue; fp_segments = segs }
                  :: !oneways))
    ctx.flows;
  let by_id a b = Int.compare a.fp_id b.fp_id in
  {
    rpcs = List.sort by_id !rpcs;
    oneways = List.sort by_id !oneways;
    incomplete = !incomplete;
  }

let segment_means r =
  let flows = r.rpcs @ r.oneways in
  List.filter_map
    (fun seg ->
      match
        List.filter_map
          (fun f -> Option.map float_of_int (List.assoc_opt seg f.fp_segments))
          flows
      with
      | [] -> None
      | xs -> Some (seg, Stats.mean xs))
    rpc_segments

(* --- printing --- *)

let print_table fmt ~title ~segments flows =
  let n = List.length flows in
  if n > 0 then begin
    Format.fprintf fmt "@.-- %s (%d flows, ns) --@." title n;
    Format.fprintf fmt "  %-12s %10s %10s %10s %7s@." "segment" "p50" "p99"
      "mean" "share";
    let e2es = List.map (fun f -> float_of_int f.fp_e2e) flows in
    let mean_e2e = Stats.mean e2es in
    List.iter
      (fun seg ->
        let xs =
          List.map
            (fun f -> float_of_int (List.assoc seg f.fp_segments))
            flows
        in
        let mean = Stats.mean xs in
        Format.fprintf fmt "  %-12s %10.2f %10.2f %10.2f %6.1f%%@." seg
          (Stats.percentile 50.0 xs /. 1000.0)
          (Stats.percentile 99.0 xs /. 1000.0)
          (mean /. 1000.0)
          (if mean_e2e > 0.0 then mean /. mean_e2e *. 100.0 else 0.0))
      segments;
    Format.fprintf fmt "  %-12s %10.2f %10.2f %10.2f %6.1f%%@." "end_to_end"
      (Stats.percentile 50.0 e2es /. 1000.0)
      (Stats.percentile 99.0 e2es /. 1000.0)
      (mean_e2e /. 1000.0) 100.0
  end

let print fmt r =
  Format.fprintf fmt "@.======== critical-path profile ========@.";
  Format.fprintf fmt "  flows: %d RPC, %d one-way, %d incomplete@."
    (List.length r.rpcs) (List.length r.oneways) r.incomplete;
  print_table fmt ~title:"RPC critical path" ~segments:rpc_segments r.rpcs;
  print_table fmt ~title:"one-way critical path" ~segments:oneway_segments
    r.oneways;
  Format.fprintf fmt "@."

(* --- folded stacks (flamegraph) --- *)

let act_frame act =
  if act < 0 then "(none)"
  else if act = 0xFFFF then "(no act)"
  else if act = 0xFFFE then "tilemux"
  else Printf.sprintf "act%d" act

let tile_frame tile =
  if tile < 0 then "global" else Printf.sprintf "tile%d" tile

(* Reconstruct span nesting per (tile, act) track by interval containment
   and attribute each span its self time (duration minus nested children),
   producing standard "frame;frame;frame weight" folded lines with
   simulated picoseconds as the weight. *)
let folded sink =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let add path v =
    match Hashtbl.find_opt acc path with
    | Some n -> Hashtbl.replace acc path (n + v)
    | None -> Hashtbl.add acc path v
  in
  let groups : (int * int, Trace.event list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.ev_ph = Trace.Complete then
        push_assoc groups (ev.ev_tile, ev.ev_act) ev)
    (Trace.events sink);
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) groups []
    |> List.sort Stdlib.compare
  in
  List.iter
    (fun (tile, act) ->
      let evs =
        List.rev !(Hashtbl.find groups (tile, act))
        |> List.stable_sort (fun (a : Trace.event) b ->
               match Int.compare a.ev_ts b.ev_ts with
               | 0 -> Int.compare b.ev_dur a.ev_dur (* parents first *)
               | c -> c)
      in
      let root = tile_frame tile ^ ";" ^ act_frame act in
      (* stack: innermost first; (frame, end_ts, dur, child_ps) *)
      let stack = ref [] in
      let close () =
        match !stack with
        | [] -> ()
        | (name, _end_ts, dur, kids) :: rest ->
            let names =
              List.rev_map (fun (n, _, _, _) -> n)
                ((name, 0, 0, 0) :: rest)
            in
            let self = dur - kids in
            if self > 0 then add (String.concat ";" (root :: names)) self;
            stack :=
              (match rest with
              | (pn, pe, pd, pk) :: tl -> (pn, pe, pd, pk + dur) :: tl
              | [] -> [])
      in
      let rec pop_for ev =
        match !stack with
        | (_, end_ts, _, _) :: _
          when ev.Trace.ev_ts >= end_ts
               || ev.Trace.ev_ts + ev.Trace.ev_dur > end_ts ->
            close ();
            pop_for ev
        | _ -> ()
      in
      List.iter
        (fun (ev : Trace.event) ->
          pop_for ev;
          stack :=
            ( ev.ev_cat ^ "/" ^ ev.ev_name,
              ev.ev_ts + ev.ev_dur,
              ev.ev_dur,
              0 )
            :: !stack)
        evs;
      while !stack <> [] do
        close ()
      done)
    keys;
  let b = Buffer.create 4096 in
  Hashtbl.fold (fun path v acc -> (path, v) :: acc) acc []
  |> List.sort Stdlib.compare
  |> List.iter (fun (path, v) ->
         Buffer.add_string b path;
         Buffer.add_char b ' ';
         Buffer.add_string b (string_of_int v);
         Buffer.add_char b '\n');
  b

let write_folded path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (folded sink))
