(** Wiring between the simulation engine and the observability layer. *)

(** Install an engine observer that, every 1024 processed events, samples
    the dispatch queue depth into the trace (when tracing is on) and
    pushes a sample of every metric's time series (when metrics are on).
    No-op when both are off. *)
val attach_engine : M3v_sim.Engine.t -> unit
