(** Human-readable trace summaries: latency percentiles (p50/p90/p99) per
    histogram and a per-tile/per-category event table. *)

val print_histograms : Format.formatter -> Trace.sink -> unit
val print_tallies : Format.formatter -> Trace.sink -> unit
val print : Format.formatter -> Trace.sink -> unit
