(** Unified tracing and metrics.

    Tracepoints throughout the stack (engine dispatch, NoC packets, DTU
    command lifecycles, TileMux scheduling, controller syscalls) report
    into one process-global {!sink}.  The sink records events in simulated
    time, keyed by tile ("pid") and activity ("tid"), and accumulates
    latency histograms plus per-tile/per-category tallies.

    When no sink is installed every tracepoint is a cheap no-op: the
    disabled check is a single boolean/option load and nothing is
    allocated, so instrumented hot paths cost nothing in ordinary runs
    (benchmark figures are bit-identical with tracing off).  Call sites on
    hot paths additionally guard argument construction with {!on}.

    Export formats: Chrome trace-event JSON via {!Chrome}, human-readable
    latency/summary tables via {!Report}. *)

type value = I of int | F of float | S of string

type phase =
  | Complete  (** a span: [ts .. ts+dur] *)
  | Instant
  | Counter
  | Flow_start  (** first point of a causal flow (Chrome ph "s") *)
  | Flow_step  (** intermediate point (Chrome ph "t") *)
  | Flow_end  (** terminal point (Chrome ph "f") *)

type event = {
  ev_cat : string;
  ev_name : string;
  ev_ph : phase;
  ev_ts : int;  (** simulated time, ps *)
  ev_dur : int;  (** span duration, ps; 0 otherwise *)
  ev_tile : int;  (** -1 when not tile-attributed *)
  ev_act : int;  (** -1 when not activity-attributed *)
  ev_id : int;  (** flow id for [Flow_*] events; -1 otherwise *)
  ev_args : (string * value) list;
}

type sink

(** [make ()] creates a sink.  At most [max_events] events are retained
    (later ones are counted in {!dropped}); histograms and tallies keep
    accumulating regardless. *)
val make : ?max_events:int -> unit -> sink

(** Install [s] as the global sink; tracepoints are live from here on.
    Installing also resets every {!at_install}-registered run-local
    allocator, so identical runs under fresh sinks emit byte-identical
    traces. *)
val install : sink -> unit

(** Register a reset hook run by {!install} (e.g. the message uid counter
    whose values flow events embed).  Call at module-init time only. *)
val at_install : (unit -> unit) -> unit

val uninstall : unit -> unit

(** [with_sink s f] runs [f] with [s] installed, uninstalling on return or
    exception. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** Whether a sink is installed.  Hot call sites check this before
    computing tracepoint arguments. *)
val on : unit -> bool

(** {1 Tracepoints} — all are no-ops when no sink is installed. *)

(** A completed span: work of [dur] ps that began at [ts]. *)
val complete :
  cat:string ->
  name:string ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  dur:int ->
  ?args:(string * value) list ->
  unit ->
  unit

val instant :
  cat:string ->
  name:string ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  ?args:(string * value) list ->
  unit ->
  unit

val counter :
  cat:string ->
  name:string ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  value:float ->
  unit ->
  unit

(** {2 Causal flows}

    A flow links causally-related points across tiles: all points of one
    flow share [(cat, name, id)] — in practice [cat = "flow"],
    [name = "msg"], [id] = the message uid — and the point kind (issue,
    inject, deliver, fetch) travels in [args].  Chrome/Perfetto draw an
    arrow from each point to the next. *)

val flow_start :
  cat:string ->
  name:string ->
  id:int ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  ?args:(string * value) list ->
  unit ->
  unit

val flow_step :
  cat:string ->
  name:string ->
  id:int ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  ?args:(string * value) list ->
  unit ->
  unit

val flow_end :
  cat:string ->
  name:string ->
  id:int ->
  ?tile:int ->
  ?act:int ->
  ts:int ->
  ?args:(string * value) list ->
  unit ->
  unit

(** Record a sample into the named latency histogram (ps). *)
val latency : string -> float -> unit

val latency_int : string -> int -> unit

(** Sample the engine's dispatch loop (queue depth every 1024 events) into
    the trace.  No-op when tracing is off. *)
val attach_engine : M3v_sim.Engine.t -> unit

(** {1 Reading a sink} *)

val events : sink -> event list

(** Events recorded (excluding dropped ones). *)
val event_count : sink -> int

(** Events discarded after the sink's [max_events] cap was reached. *)
val dropped : sink -> int

(** The sink's event cap, as passed to {!make}. *)
val max_events : sink -> int

val histogram : sink -> string -> M3v_sim.Stats.Histogram.t
val histograms : sink -> (string * M3v_sim.Stats.Histogram.t) list

(** [(key, count, total_dur_ps)] per ["tile<i>/<cat>/<name>"], sorted. *)
val tallies : sink -> (string * int * int) list
