(** The network-on-chip transport.

    Packets are flit streams pushed over the precomputed route.  Each
    directed link keeps a [free_at] horizon: a packet starts crossing a link
    no earlier than the link is free, which models serialization and
    contention without simulating individual flits.  Delivery invokes a
    callback on the engine at the computed arrival time, so all higher
    protocol layers (DTU transfers, credit returns, external endpoint
    configuration) share one transport with backpressure. *)

type params = {
  flit_bytes : int;  (** payload bytes per flit *)
  ps_per_flit : int;  (** link serialization time per flit *)
  hop_latency_ps : int;  (** router traversal + wire latency per hop *)
  header_flits : int;  (** header overhead per packet *)
}

(** 400 MHz NoC, 16-byte flits, 3-cycle hop latency: tile-to-tile latency in
    the low dozens of nanoseconds, matching the paper's platform. *)
val default_params : params

(** Minimum latency any cross-tile delivery can experience under the given
    parameters (one hop's router + wire traversal, before serialization or
    contention) — the lookahead a conservative sharded scheduler may rely
    on.  Takes [params] rather than [t] so it can be computed before the
    transport exists. *)
val conservative_lookahead : params -> M3v_sim.Time.t

type t

(** Fault-injection class of a packet.  [Data] packets (DTU messages,
    replies, DMA bursts) are best-effort when a fault plan is installed;
    [Control] packets (completion acks, credit returns, kernel wires)
    model the lossless credit-managed sideband and are never faulted. *)
type kind = Data | Control

type stats = {
  packets : int;
  payload_bytes : int;
  total_flits : int;
  link_busy_ps : int;  (** accumulated serialization time over all links *)
}

val create : ?params:params -> M3v_sim.Engine.t -> Topology.t -> t
val topology : t -> Topology.t
val params : t -> params

(** [send t ~src ~dst ~bytes ~on_delivered] injects a [bytes]-byte packet at
    the current time and schedules [on_delivered] at the arrival time.
    [src = dst] models a DTU-internal loopback with a small fixed cost.
    [kind] defaults to [Control] (lossless); callers must mark data-plane
    packets [Data] explicitly to make them eligible for fault injection. *)
val send :
  ?kind:kind ->
  t ->
  src:int ->
  dst:int ->
  bytes:int ->
  on_delivered:(unit -> unit) ->
  unit

(** Pure estimate of an uncontended transfer's latency, used by cost
    accounting and tests. *)
val uncontended_latency : t -> src:int -> dst:int -> bytes:int -> M3v_sim.Time.t

val stats : t -> stats
val reset_stats : t -> unit
