module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Trace = M3v_obs.Trace
module Metrics = M3v_obs.Metrics
module Fault = M3v_fault.Fault

(* Data-plane packets (DTU messages, replies, DMA bursts) are best-effort
   under fault injection; Control packets (completion acks, credit
   returns, kernel wires) ride the lossless sideband and are never
   faulted. *)
type kind = Data | Control

type params = {
  flit_bytes : int;
  ps_per_flit : int;
  hop_latency_ps : int;
  header_flits : int;
}

(* 16-byte flits at ~1.6 GB/s per link, 3 router cycles per hop: tile-to-
   tile latency in the low dozens of nanoseconds (paper, section 2.3). *)
let default_params =
  { flit_bytes = 16; ps_per_flit = 10_000; hop_latency_ps = 7_500; header_flits = 1 }

(* The cheapest cross-tile delivery under [p] is a single-hop router
   traversal with zero serialization — every real packet costs at least
   this much.  A conservative sharded scheduler may therefore execute
   [lookahead] ahead of other shards' horizons without missing a
   message. *)
let conservative_lookahead p = p.hop_latency_ps

type stats = {
  packets : int;
  payload_bytes : int;
  total_flits : int;
  link_busy_ps : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  params : params;
  free_at : Time.t array; (* per directed link *)
  mutable stats : stats;
}

let empty_stats = { packets = 0; payload_bytes = 0; total_flits = 0; link_busy_ps = 0 }

let create ?(params = default_params) engine topo =
  {
    engine;
    topo;
    params;
    free_at = Array.make (Topology.link_count topo) Time.zero;
    stats = empty_stats;
  }

let topology t = t.topo
let params t = t.params

let flits_of_bytes t bytes =
  t.params.header_flits
  + ((bytes + t.params.flit_bytes - 1) / t.params.flit_bytes)

(* Loopback (src = dst) stays inside the DTU: charge one hop. *)
let loopback_latency t = t.params.hop_latency_ps

let transfer_time t ~record ~start route flits =
  let serialization = flits * t.params.ps_per_flit in
  let arrival = ref start in
  List.iter
    (fun link ->
      let begin_at = Time.max !arrival t.free_at.(link) in
      if record then begin
        t.free_at.(link) <- Time.add begin_at serialization;
        t.stats <-
          { t.stats with link_busy_ps = t.stats.link_busy_ps + serialization };
        if Metrics.on () then begin
          let name = Topology.link_name t.topo link in
          Metrics.counter_add ~name:"noc/link_busy_ps" ~cat:name
            (float_of_int serialization);
          Metrics.counter_incr ~name:"noc/link_pkts" ~cat:name ()
        end
      end;
      arrival := Time.add begin_at t.params.hop_latency_ps)
    route;
  (* The tail flit lands one serialization window after the head. *)
  Time.add !arrival serialization

let uncontended_latency t ~src ~dst ~bytes =
  let flits = flits_of_bytes t bytes in
  if src = dst then loopback_latency t
  else
    let route = Topology.route t.topo ~src ~dst in
    let hops = List.length route in
    (hops * t.params.hop_latency_ps) + (flits * t.params.ps_per_flit)

(* One physical copy of a packet: route it, account link occupancy, and
   schedule [on_delivered] at arrival (+[extra] injected delay). *)
let send_one t ~src ~dst ~bytes ~extra ~on_delivered =
  let now = Engine.now t.engine in
  let flits = flits_of_bytes t bytes in
  let arrival =
    if src = dst then Time.add now (loopback_latency t)
    else
      let route = Topology.route t.topo ~src ~dst in
      transfer_time t ~record:true ~start:now route flits
  in
  let arrival = Time.add arrival extra in
  t.stats <-
    {
      t.stats with
      packets = t.stats.packets + 1;
      payload_bytes = t.stats.payload_bytes + bytes;
      total_flits = t.stats.total_flits + flits;
    };
  if Trace.on () then begin
    let dur = Time.sub arrival now in
    (* Queueing delay: how much longer than an uncontended transfer this
       packet took waiting for busy links along its route. *)
    let queue_ps = max 0 (dur - uncontended_latency t ~src ~dst ~bytes) in
    Trace.complete ~cat:"noc" ~name:"pkt" ~tile:src ~ts:now ~dur
      ~args:
        [
          ("src", Trace.I src);
          ("dst", Trace.I dst);
          ("bytes", Trace.I bytes);
          ("queue_ps", Trace.I queue_ps);
        ]
      ();
    Trace.latency_int "noc/packet" dur;
    Trace.latency_int "noc/queueing" queue_ps
  end;
  Engine.at t.engine ~time:arrival on_delivered

let send ?(kind = Control) t ~src ~dst ~bytes ~on_delivered =
  if kind = Control || not (Fault.on ()) then
    send_one t ~src ~dst ~bytes ~extra:0 ~on_delivered
  else
    match Fault.noc_fate ~now:(Engine.now t.engine) ~src ~dst with
    | Fault.Deliver -> send_one t ~src ~dst ~bytes ~extra:0 ~on_delivered
    | Fault.Drop ->
        (* The packet still occupies the route before it is lost. *)
        send_one t ~src ~dst ~bytes ~extra:0 ~on_delivered:(fun () -> ())
    | Fault.Duplicate ->
        (* Both copies arrive; the receiver deduplicates by message uid. *)
        send_one t ~src ~dst ~bytes ~extra:0 ~on_delivered;
        send_one t ~src ~dst ~bytes ~extra:0 ~on_delivered
    | Fault.Delay extra -> send_one t ~src ~dst ~bytes ~extra ~on_delivered

let stats t = t.stats
let reset_stats t = t.stats <- empty_stats
