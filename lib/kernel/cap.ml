module Dtu_types = M3v_dtu.Dtu_types

type rgate = {
  rg_slots : int;
  rg_slot_size : int;
  rg_mpmc : bool;
  rg_ack_batch : int;
  mutable rg_loc : (int * int) option;
}

type obj =
  | Rgate of rgate
  | Sgate of { sg_rgate : rgate; sg_label : int; sg_credits : int }
  | Mgate of {
      mg_tile : int;
      mg_base : int;
      mg_size : int;
      mg_perm : Dtu_types.perm;
    }

type t = {
  sel : int;
  owner : Dtu_types.act_id;
  obj : obj;
  mutable children : t list;
  mutable parent : t option;
  mutable live : bool;
  mutable activated : (int * int) list;
}

let make ~sel ~owner obj =
  { sel; owner; obj; children = []; parent = None; live = true; activated = [] }

let derive parent ~sel ~owner obj =
  if not parent.live then invalid_arg "Cap.derive: parent is revoked";
  let child = { (make ~sel ~owner obj) with parent = Some parent } in
  parent.children <- child :: parent.children;
  child

let perm_intersect a b =
  let open Dtu_types in
  match (a, b) with
  | RW, p | p, RW -> Some p
  | R, R -> Some R
  | W, W -> Some W
  | R, W | W, R -> None

let derive_mem parent ~sel ~owner ~off ~len ~perm =
  if not parent.live then Error "parent capability is revoked"
  else
    match parent.obj with
    | Mgate m ->
        if off < 0 || len <= 0 || off + len > m.mg_size then
          Error "derived range out of bounds"
        else (
          match perm_intersect m.mg_perm perm with
          | None -> Error "derived permissions exceed parent"
          | Some perm ->
              let obj =
                Mgate
                  {
                    mg_tile = m.mg_tile;
                    mg_base = m.mg_base + off;
                    mg_size = len;
                    mg_perm = perm;
                  }
              in
              Ok (derive parent ~sel ~owner obj))
    | Rgate _ | Sgate _ -> Error "not a memory capability"

let note_activation t ~tile ~ep = t.activated <- (tile, ep) :: t.activated

let revoke t =
  let killed = ref [] and eps = ref [] in
  let rec walk cap =
    if cap.live then begin
      cap.live <- false;
      killed := cap :: !killed;
      eps := cap.activated @ !eps;
      cap.activated <- [];
      List.iter walk cap.children;
      cap.children <- []
    end
  in
  walk t;
  (* Detach from the parent so the subtree can be collected. *)
  (match t.parent with
  | Some p -> p.children <- List.filter (fun c -> c != t) p.children
  | None -> ());
  (!killed, !eps)

let rec live_count t =
  (if t.live then 1 else 0)
  + List.fold_left (fun acc c -> acc + live_count c) 0 t.children

let pp fmt t =
  let kind =
    match t.obj with
    | Rgate { rg_mpmc = true; _ } -> "mpmc-rgate"
    | Rgate _ -> "rgate"
    | Sgate _ -> "sgate"
    | Mgate m -> Printf.sprintf "mgate[t%d+%#x,%#x]" m.mg_tile m.mg_base m.mg_size
  in
  Format.fprintf fmt "cap[sel=%d owner=%a %s%s]" t.sel Dtu_types.pp_act t.owner
    kind
    (if t.live then "" else " revoked")
