(** Message payloads of the controller's syscall interface and the M3x
    slow path.

    Activities issue "system calls" as DTU messages to the controller
    (paper, section 3.3); these are the request and reply payloads.  OS
    services (file system, network, pager) define their own payload
    constructors in their own modules. *)

type sys_req =
  | Noop  (** measurement aid: a no-op round trip through the controller *)
  | Alloc_mem of { size : int; perm : M3v_dtu.Dtu_types.perm }
      (** allocate physical memory; yields a memory capability *)
  | Create_rgate of { slots : int; slot_size : int }
  | Create_mpmc_rgate of { slots : int; slot_size : int; ack_batch : int }
      (** create a shared multi-producer receive gate: send gates delegated
          against it from many activities all target the same endpoint, and
          the receiver's acks batch their credit refunds *)
  | Create_sgate_for of {
      target : M3v_dtu.Dtu_types.act_id;
      rgate_sel : int;  (** selector in the {e requester}'s table *)
      label : int;
      credits : int;
    }
      (** create a send gate to the requester's receive gate inside
          [target]'s capability table — kernel-mediated channel
          establishment *)
  | Derive_mem_for of {
      target : M3v_dtu.Dtu_types.act_id;
      src_sel : int;
      off : int;
      len : int;
      perm : M3v_dtu.Dtu_types.perm;
    }
      (** derive a sub-range of the requester's memory capability into
          [target]'s table (how m3fs hands out extents) *)
  | Activate of { sel : int; ep : int option }
      (** configure an endpoint on the requester's tile from a capability *)
  | Revoke of { sel : int }
  | Map_for of {
      target : M3v_dtu.Dtu_types.act_id;
      vpage : int;
      ppage : int;
      perm : M3v_dtu.Dtu_types.perm;
    }
      (** pager requests a mapping; the controller forwards it to the
          TileMux instance responsible for [target] (paper, section 4.3) *)
  | Act_exit of { code : int }
  | Migrate of { mig_tile : int }
      (** move the requester to another tile.  Replied to immediately with
          [Ok_unit] (or [Sys_err] if the request is invalid); the migration
          protocol then intercepts the activity at its next TMCall
          boundary. *)

type sys_reply =
  | Ok_unit
  | Ok_sel of int
  | Ok_ep of int
  | Sys_err of string

type M3v_dtu.Msg.data +=
  | Sys of sys_req
  | Sys_reply of sys_reply
  | Mx_fwd of {
      fwd_dst_tile : int;
      fwd_dst_ep : int;
      fwd : M3v_dtu.Msg.t;  (** the original message to deliver *)
      fwd_block : bool;  (** block the sender after forwarding (RPC wait) *)
    }  (** M3x slow path: forward a message via the controller *)
  | Mx_block  (** M3x: sender has nothing to do until a message arrives *)
  | Mx_yield  (** M3x: voluntary yield, stay ready *)
  | Mx_wake
      (** M3x: a fast-path message arrived for the blocked current activity;
          the controller must resume it *)
  | Tm_map of {
      tm_req_id : int;
      tm_act : M3v_dtu.Dtu_types.act_id;
      tm_vpage : int;
      tm_ppage : int;
      tm_perm : M3v_dtu.Dtu_types.perm;
    }  (** controller -> TileMux: install a page-table entry *)
  | Tm_map_done of { tm_req_id : int }  (** TileMux -> controller *)

(** Wire sizes used for timing. *)
val sys_req_size : sys_req -> int

val sys_reply_size : sys_reply -> int

val pp_sys_req : Format.formatter -> sys_req -> unit
val pp_sys_reply : Format.formatter -> sys_reply -> unit
