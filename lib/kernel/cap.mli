(** Capabilities (paper, section 3.3).

    The controller decides which communication channels exist via
    capability-based access control.  Capabilities form a derivation tree:
    deriving or delegating creates children, and revocation removes a whole
    subtree, deactivating any endpoints that were configured from revoked
    capabilities. *)

(** A receive-gate object.  [loc] is set once the gate has been activated on
    an endpoint; send gates can only be activated towards located receive
    gates. *)
type rgate = {
  rg_slots : int;
  rg_slot_size : int;
  rg_mpmc : bool;
      (** shared multi-producer receive queue: many sgates may be delegated
          against it and the receiver acks in batches *)
  rg_ack_batch : int;  (** credit-refund flush threshold (MPMC only) *)
  mutable rg_loc : (int * int) option;  (** (tile, endpoint) once activated *)
}

type obj =
  | Rgate of rgate
  | Sgate of { sg_rgate : rgate; sg_label : int; sg_credits : int }
  | Mgate of {
      mg_tile : int;  (** memory tile *)
      mg_base : int;
      mg_size : int;
      mg_perm : M3v_dtu.Dtu_types.perm;
    }

type t = {
  sel : int;  (** selector in the owner's table *)
  owner : M3v_dtu.Dtu_types.act_id;
  obj : obj;
  mutable children : t list;
  mutable parent : t option;
  mutable live : bool;
  mutable activated : (int * int) list;  (** endpoints configured from this cap *)
}

val make : sel:int -> owner:M3v_dtu.Dtu_types.act_id -> obj -> t

(** [derive parent ~sel ~owner obj] creates a child capability (delegation
    and memory derivation both go through here). *)
val derive : t -> sel:int -> owner:M3v_dtu.Dtu_types.act_id -> obj -> t

(** [derive_mem parent ~sel ~owner ~off ~len ~perm] derives a sub-range of a
    memory capability, intersecting permissions.  Returns [Error] if
    [parent] is not a live memory capability or the range is out of
    bounds. *)
val derive_mem :
  t ->
  sel:int ->
  owner:M3v_dtu.Dtu_types.act_id ->
  off:int ->
  len:int ->
  perm:M3v_dtu.Dtu_types.perm ->
  (t, string) result

(** Record that an endpoint was configured from this capability. *)
val note_activation : t -> tile:int -> ep:int -> unit

(** Revoke the capability and its whole subtree.  Returns all capabilities
    killed (for table cleanup) and all (tile, endpoint) pairs that must be
    invalidated. *)
val revoke : t -> t list * (int * int) list

(** Number of live capabilities in the subtree rooted here (including the
    root if live). *)
val live_count : t -> int

val pp : Format.formatter -> t -> unit
