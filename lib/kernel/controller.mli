(** The communication controller (M3's "kernel").

    The controller runs on a dedicated tile, knows all activities, and is
    the only component allowed to establish communication channels: it
    configures endpoints through the DTUs' external interface, mediated by
    capability-based access control.  Activities reach it with "system
    calls" in the form of DTU messages to its receive endpoint 0; the
    controller is single-threaded and processes one request at a time — the
    property that makes M3x's remote multiplexing a bottleneck (paper,
    sections 2.2 and 6.4).

    In [`M3x] mode the controller additionally performs all context switches
    remotely: it saves/restores endpoint state over the NoC, keeps the
    per-tile scheduling state, and forwards slow-path messages to
    not-currently-running activities. *)

type mode = M3v | M3x

type t

(** Per-tile stub the M3x runtime registers so the controller can drive
    remote context switches.  The callbacks charge tile-side time and call
    [k] when done. *)
type mx_stub = {
  mx_save : k:(unit -> unit) -> unit;
      (** save the current activity's core state *)
  mx_restore : M3v_dtu.Dtu_types.act_id -> k:(unit -> unit) -> unit;
      (** install the activity as current and resume it *)
}

val create :
  mode:mode -> platform:M3v_tile.Platform.t -> tile:int -> unit -> t

val mode : t -> mode
val tile : t -> int
val platform : t -> M3v_tile.Platform.t

(** {1 Host-level (uncharged) setup API}

    Used by the experiment harness to build a system before measurement
    starts, mirroring what the boot process and initial syscalls would do. *)

val host_new_act : t -> tile:int -> name:string -> M3v_dtu.Dtu_types.act_id
val act_name : t -> M3v_dtu.Dtu_types.act_id -> string
val act_tile : t -> M3v_dtu.Dtu_types.act_id -> int

(** Allocate a fresh endpoint on [tile] for [act]. *)
val host_alloc_ep : t -> tile:int -> act:M3v_dtu.Dtu_types.act_id -> int

(** Allocate an endpoint that belongs to no activity (TileMux's own
    endpoints). *)
val host_alloc_ep_anon : t -> tile:int -> int

(** Allocate physical memory from a memory tile (first fit across memory
    tiles); returns (memory tile, base offset). *)
val host_alloc_mem : t -> size:int -> int * int

val host_new_rgate :
  t -> act:M3v_dtu.Dtu_types.act_id -> slots:int -> slot_size:int -> int

(** Create a shared multi-producer (MPMC) receive gate: send gates delegated
    against it from many activities all target the same endpoint, and the
    receiver's acks batch credit refunds ([ack_batch] per flush, default
    16). *)
val host_new_mpmc_rgate :
  t ->
  act:M3v_dtu.Dtu_types.act_id ->
  slots:int ->
  slot_size:int ->
  ?ack_batch:int ->
  unit ->
  int

val host_new_sgate :
  t ->
  owner:M3v_dtu.Dtu_types.act_id ->
  rgate_of:M3v_dtu.Dtu_types.act_id ->
  rgate_sel:int ->
  ?label:int ->
  credits:int ->
  unit ->
  int

val host_new_mgate :
  t ->
  act:M3v_dtu.Dtu_types.act_id ->
  mem_tile:int ->
  base:int ->
  size:int ->
  perm:M3v_dtu.Dtu_types.perm ->
  int

(** Configure an endpoint from a capability (immediately, uncharged).
    Returns the endpoint used. *)
val host_activate :
  t -> act:M3v_dtu.Dtu_types.act_id -> sel:int -> ?ep:int -> unit -> int

(** Set up the per-activity syscall channel; returns
    (send endpoint, reply receive endpoint) on the activity's tile. *)
val host_setup_syscall_channel : t -> act:M3v_dtu.Dtu_types.act_id -> int * int

(** Look up a capability (tests and services). *)
val find_cap : t -> act:M3v_dtu.Dtu_types.act_id -> sel:int -> Cap.t option

(** The owning activity of a receive endpoint, if known. *)
val ep_owner : t -> tile:int -> ep:int -> M3v_dtu.Dtu_types.act_id option

(** {1 Crash recovery (M3v)}

    A nonzero [Act_exit] code is treated as a crash.  A restartable
    activity (with budget left) is restarted in place through the tile's
    registered restart hook — endpoints, capabilities and queued requests
    survive.  Anything else is torn down: all of its capabilities are
    revoked (cascading), orphaned send credits at peers are reclaimed, and
    its endpoints are invalidated so partners observe [Recv_gone] (EOF). *)

(** Last exit code the activity reported, if any ([None] while alive or
    after a successful restart). *)
val exit_code : t -> M3v_dtu.Dtu_types.act_id -> int option

(** How many times the activity has been restarted. *)
val restarts : t -> M3v_dtu.Dtu_types.act_id -> int

(** Allow up to [max_restarts] in-place restarts after crashes (services). *)
val set_restartable :
  t -> act:M3v_dtu.Dtu_types.act_id -> max_restarts:int -> unit

(** Register the per-tile restart hook (the M3v runtime's [respawn]). *)
val register_restart_hook :
  t -> tile:int -> (M3v_dtu.Dtu_types.act_id -> unit) -> unit

(** {1 Live migration (M3v)}

    Controller-orchestrated protocol: quiesce the activity at a TMCall
    boundary, drain in-flight state, then atomically flip its endpoints,
    TLB image and ownership tables to the target tile and resume it there.
    The vacated source slots keep forwarding pointers, so in-flight packets
    and late credit grants chase the activity; messages are delivered
    exactly once and the system-wide credit total is conserved (asserted).
    Fault injection ([mig_abort] in the plan spec) may abort the protocol
    before the flip — the activity is reinstalled on the source; after the
    flip it only rolls forward. *)

(** Opaque activity image carried from source to target runtime.  Extended
    (and consumed) by the runtime library; the controller only moves it. *)
type mig_image = ..

(** Per-tile migration callbacks the M3v runtime registers. *)
type mig_stub = {
  mig_quiesce :
    act:M3v_dtu.Dtu_types.act_id -> k:(mig_image option -> unit) -> unit;
      (** park the activity at its next TMCall boundary and extract its
          image; [k None] if it exited (or was killed) first *)
  mig_install : image:mig_image -> sys_sgate:int -> sys_rgate:int -> unit;
      (** materialize a parked image on this tile (not yet runnable) *)
  mig_resume : act:M3v_dtu.Dtu_types.act_id -> unit;
      (** make the installed activity runnable again *)
}

val register_mig_stub : t -> tile:int -> mig_stub -> unit

(** [migrate t ~act ~dst_tile ~k] moves a live activity to [dst_tile].
    [k (Error _)] on validation failure or an injected abort (the activity
    keeps running on the source); [k (Ok ())] once it is runnable on the
    target.  At most one migration is in flight at a time. *)
val migrate :
  t ->
  act:M3v_dtu.Dtu_types.act_id ->
  dst_tile:int ->
  k:((unit, string) result -> unit) ->
  unit

(** Register the TileMux receive endpoint of a tile so the controller can
    forward mapping requests (paper, section 4.3). *)
val register_tm_rgate : t -> tile:int -> ep:int -> unit

(** {1 M3x integration} *)

val register_mx_stub : t -> tile:int -> mx_stub -> unit

(** Register an activity with the M3x scheduler: its endpoints are
    snapshotted and parked; the activity becomes ready and will be switched
    in when the controller decides. *)
val mx_register_act : t -> act:M3v_dtu.Dtu_types.act_id -> unit

(** The activity whose endpoints are currently live on [tile]. *)
val mx_current : t -> tile:int -> M3v_dtu.Dtu_types.act_id option

(** Start M3x scheduling on a tile after boot (switches the first ready
    activity in). *)
val mx_kick : t -> tile:int -> unit

(** One-way notification from the M3x runtime that a blocked, current
    activity woke up locally (fast-path message arrival). *)
val mx_notify_wake : t -> act:M3v_dtu.Dtu_types.act_id -> unit

(** {1 Statistics} *)

type stats = {
  syscalls : int;
  mx_switches : int;
  mx_forwards : int;
  busy_ps : int;  (** total simulated time the controller core was busy *)
  crashes : int;  (** nonzero exit codes handled *)
  restarts : int;  (** in-place activity restarts performed *)
  credits_reclaimed : int;  (** send credits recovered from dead receivers *)
  migrations : int;  (** completed live migrations *)
  mig_aborts : int;  (** migrations aborted before the flip *)
  mig_downtime_ps : int;
      (** summed park-to-resume downtime across migrations (and aborts) *)
}

val stats : t -> stats
val reset_stats : t -> unit
