module Engine = M3v_sim.Engine
module Time = M3v_sim.Time
module Noc = M3v_noc.Noc
module Dtu = M3v_dtu.Dtu
module Dtu_types = M3v_dtu.Dtu_types
module Ep = M3v_dtu.Ep
module Msg = M3v_dtu.Msg
module Platform = M3v_tile.Platform
module Core_model = M3v_tile.Core_model
module Trace = M3v_obs.Trace
module Metrics = M3v_obs.Metrics
module Tlb = M3v_dtu.Tlb
module Fault = M3v_fault.Fault
open Dtu_types

type mode = M3v | M3x

type mx_stub = {
  mx_save : k:(unit -> unit) -> unit;
  mx_restore : act_id -> k:(unit -> unit) -> unit;
}

(* Opaque activity image carried from the source runtime to the target
   runtime during a live migration.  The runtime library extends it; the
   controller only moves it around. *)
type mig_image = ..

type mig_stub = {
  mig_quiesce : act:act_id -> k:(mig_image option -> unit) -> unit;
      (** park the activity at its next TMCall boundary and extract its
          image; [k None] if it died (or exited) first *)
  mig_install : image:mig_image -> sys_sgate:int -> sys_rgate:int -> unit;
      (** materialize the parked image on this tile (state [Migrating]) *)
  mig_resume : act:act_id -> unit;  (** make the installed activity runnable *)
}

type act = {
  aid : act_id;
  name : string;
  mutable a_tile : int;  (* mutable: live migration moves activities *)
  caps : (int, Cap.t) Hashtbl.t;
  mutable next_sel : int;
  mutable alive : bool;
  mutable exit_code : int option;  (* last reported exit code *)
  mutable restarts : int;
  mutable max_restarts : int;  (* 0 = not restartable *)
  mutable ep_list : int list;  (* endpoints allocated for this activity *)
  mutable syscall_eps : (int * int) option;
  (* M3x scheduling state *)
  mutable mx_blocked : bool;
  mutable mx_wake_pending : bool;
  mutable mx_registered : bool;
}

type mx_tile_state = {
  mutable cur : act_id option;
  ready : act_id Queue.t;
  pending : (act_id, (int * Msg.t) Queue.t) Hashtbl.t;
      (* deliveries waiting for the activity to be switched in: (ep, msg) *)
  snapshots : (act_id, (int * Ep.t) list) Hashtbl.t;
  mutable switching : bool;
}

type stats = {
  syscalls : int;
  mx_switches : int;
  mx_forwards : int;
  busy_ps : int;
  crashes : int;
  restarts : int;
  credits_reclaimed : int;
  migrations : int;
  mig_aborts : int;
  mig_downtime_ps : int;
}

type t = {
  mode : mode;
  platform : Platform.t;
  tile : int;
  engine : Engine.t;
  noc : Noc.t;
  dtu : Dtu.t;
  core : Core_model.t;
  acts : (act_id, act) Hashtbl.t;
  mutable next_act : act_id;
  ep_next : int array;  (* per-tile endpoint allocator *)
  mem_next : (int * int ref) list;  (* (memory tile, bump pointer) *)
  ep_owners : (int * int, act_id) Hashtbl.t;  (* (tile, recv ep) -> owner *)
  mx_stubs : (int, mx_stub) Hashtbl.t;
  mig_stubs : (int, mig_stub) Hashtbl.t;
  mutable mig_busy : bool;  (* at most one migration in flight *)
  mx_tiles : (int, mx_tile_state) Hashtbl.t;
  tm_rgates : (int, int) Hashtbl.t;  (* tile -> TileMux receive endpoint *)
  restart_hooks : (int, act_id -> unit) Hashtbl.t;  (* tile -> respawn *)
  pending_maps : (int, Msg.t) Hashtbl.t;  (* map request id -> pager syscall *)
  mutable next_map_req : int;
  mutable busy : bool;
  mutable stats : stats;
}

(* --- calibration constants (controller-side costs, in controller-core
   cycles).  See DESIGN.md section 5 and EXPERIMENTS.md for how these were
   chosen. --- *)
let syscall_cycles = 900
let activate_extra_cycles = 300
let revoke_per_cap_cycles = 250
let restart_cycles = 2_000
let mx_fwd_cycles = 1_150
let mx_save_phase_cycles = 2_100
let mx_restore_phase_cycles = 2_100
let mx_deliver_cycles = 580
let ep_save_bytes_per_ep = 32
let mig_prepare_cycles = 1_200
let mig_flip_cycles = 800
let mig_resume_cycles = 1_400

(* The controller's syscall receive endpoint. *)
let syscall_ep = 0

let empty_stats =
  {
    syscalls = 0;
    mx_switches = 0;
    mx_forwards = 0;
    busy_ps = 0;
    crashes = 0;
    restarts = 0;
    credits_reclaimed = 0;
    migrations = 0;
    mig_aborts = 0;
    mig_downtime_ps = 0;
  }

let find_act t aid =
  match Hashtbl.find_opt t.acts aid with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Controller: unknown activity %d" aid)

let mode t = t.mode
let tile t = t.tile
let platform t = t.platform
let stats t = t.stats
let reset_stats t = t.stats <- empty_stats

let add_busy t d = t.stats <- { t.stats with busy_ps = t.stats.busy_ps + d }

(* Charge controller compute time, then continue. *)
let charge t cycles k =
  let d = Core_model.cycles t.core cycles in
  add_busy t d;
  Engine.after t.engine ~delay:d k

(* A synchronous access through a remote DTU's external interface: request
   over the NoC, apply, acknowledgement back.  The controller is busy for
   the whole round trip. *)
let ext_round_trip t ~dst ~bytes ~apply ~k =
  let started = Engine.now t.engine in
  Noc.send t.noc ~src:t.tile ~dst ~bytes ~on_delivered:(fun () ->
      apply ();
      Noc.send t.noc ~src:dst ~dst:t.tile ~bytes:16 ~on_delivered:(fun () ->
          add_busy t (Time.sub (Engine.now t.engine) started);
          k ()))

(* --- host-level setup API --- *)

let host_new_act t ~tile ~name =
  let aid = t.next_act in
  t.next_act <- aid + 1;
  Hashtbl.replace t.acts aid
    {
      aid;
      name;
      a_tile = tile;
      caps = Hashtbl.create 16;
      next_sel = 0;
      alive = true;
      exit_code = None;
      restarts = 0;
      max_restarts = 0;
      ep_list = [];
      syscall_eps = None;
      mx_blocked = false;
      mx_wake_pending = false;
      mx_registered = false;
    };
  aid

let act_name t aid = (find_act t aid).name
let act_tile t aid = (find_act t aid).a_tile
let exit_code t aid = (find_act t aid).exit_code
let restarts t aid = (find_act t aid).restarts

let set_restartable t ~act ~max_restarts =
  (find_act t act).max_restarts <- max_restarts

let register_restart_hook t ~tile hook = Hashtbl.replace t.restart_hooks tile hook

let host_alloc_ep_anon t ~tile =
  let ep = t.ep_next.(tile) in
  if ep >= Dtu.ep_count (Platform.dtu t.platform tile) then
    failwith (Printf.sprintf "Controller: tile %d out of endpoints" tile);
  t.ep_next.(tile) <- ep + 1;
  ep

let host_alloc_ep t ~tile ~act =
  let ep = host_alloc_ep_anon t ~tile in
  let a = find_act t act in
  a.ep_list <- a.ep_list @ [ ep ];
  ep

let host_alloc_mem t ~size =
  let rec try_tiles = function
    | [] -> failwith "Controller: out of physical memory"
    | (mtile, next) :: rest ->
        let dram = Platform.dram_exn t.platform mtile in
        if !next + size <= M3v_dtu.Dram.size dram then begin
          let base = !next in
          next := !next + size;
          (mtile, base)
        end
        else try_tiles rest
  in
  try_tiles t.mem_next

let new_sel a =
  let sel = a.next_sel in
  a.next_sel <- sel + 1;
  sel

let put_cap a cap = Hashtbl.replace a.caps cap.Cap.sel cap

let host_new_rgate t ~act ~slots ~slot_size =
  let a = find_act t act in
  let sel = new_sel a in
  let cap =
    Cap.make ~sel ~owner:act
      (Cap.Rgate
         {
           rg_slots = slots;
           rg_slot_size = slot_size;
           rg_mpmc = false;
           rg_ack_batch = 1;
           rg_loc = None;
         })
  in
  put_cap a cap;
  sel

(* A shared multi-producer receive gate: send gates delegated against it
   from any number of activities all target the same endpoint, and the
   receiver's acks batch credit refunds ([ack_batch] per flush). *)
let host_new_mpmc_rgate t ~act ~slots ~slot_size ?(ack_batch = 16) () =
  let a = find_act t act in
  let sel = new_sel a in
  let cap =
    Cap.make ~sel ~owner:act
      (Cap.Rgate
         {
           rg_slots = slots;
           rg_slot_size = slot_size;
           rg_mpmc = true;
           rg_ack_batch = ack_batch;
           rg_loc = None;
         })
  in
  put_cap a cap;
  sel

let rgate_of_cap cap =
  match cap.Cap.obj with
  | Cap.Rgate rg -> rg
  | _ -> invalid_arg "Controller: capability is not a receive gate"

let host_new_sgate t ~owner ~rgate_of ~rgate_sel ?(label = 0) ~credits () =
  let rg_act = find_act t rgate_of in
  let rgate_cap =
    match Hashtbl.find_opt rg_act.caps rgate_sel with
    | Some c -> c
    | None -> invalid_arg "Controller: unknown rgate selector"
  in
  let rg = rgate_of_cap rgate_cap in
  let a = find_act t owner in
  let sel = new_sel a in
  let cap =
    Cap.derive rgate_cap ~sel ~owner
      (Cap.Sgate { sg_rgate = rg; sg_label = label; sg_credits = credits })
  in
  put_cap a cap;
  sel

let host_new_mgate t ~act ~mem_tile ~base ~size ~perm =
  let a = find_act t act in
  let sel = new_sel a in
  let cap =
    Cap.make ~sel ~owner:act
      (Cap.Mgate { mg_tile = mem_tile; mg_base = base; mg_size = size; mg_perm = perm })
  in
  put_cap a cap;
  sel

let find_cap t ~act ~sel =
  match Hashtbl.find_opt t.acts act with
  | None -> None
  | Some a -> Hashtbl.find_opt a.caps sel

(* Compute the endpoint configuration an activation implies. *)
let activation_config cap =
  match cap.Cap.obj with
  | Cap.Rgate rg when rg.Cap.rg_mpmc ->
      Ok
        (Ep.mpmc_config ~slots:rg.Cap.rg_slots ~slot_size:rg.Cap.rg_slot_size
           ~ack_batch:rg.Cap.rg_ack_batch ())
  | Cap.Rgate rg ->
      Ok (Ep.recv_config ~slots:rg.Cap.rg_slots ~slot_size:rg.Cap.rg_slot_size ())
  | Cap.Sgate { sg_rgate; sg_label; sg_credits } -> (
      match sg_rgate.Cap.rg_loc with
      | None -> Error "receive gate not activated yet"
      | Some (dst_tile, dst_ep) ->
          Ok
            (Ep.send_config ~dst_tile ~dst_ep ~label:sg_label
               ~max_msg_size:(sg_rgate.Cap.rg_slot_size - Msg.header_bytes)
               ~credits:sg_credits ()))
  | Cap.Mgate m ->
      Ok (Ep.mem_config ~mem_tile:m.mg_tile ~base:m.mg_base ~size:m.mg_size ~perm:m.mg_perm)

let apply_activation t ~a ~cap ~ep cfg =
  let dtu = Platform.dtu t.platform a.a_tile in
  Dtu.ext_config dtu ~ep ~owner:a.aid cfg;
  Cap.note_activation cap ~tile:a.a_tile ~ep;
  (match cap.Cap.obj with
  | Cap.Rgate rg ->
      rg.Cap.rg_loc <- Some (a.a_tile, ep);
      Hashtbl.replace t.ep_owners (a.a_tile, ep) a.aid
  | Cap.Sgate _ | Cap.Mgate _ -> ())

let host_activate t ~act ~sel ?ep () =
  let a = find_act t act in
  let cap =
    match Hashtbl.find_opt a.caps sel with
    | Some c when c.Cap.live -> c
    | Some _ -> invalid_arg "Controller.host_activate: capability revoked"
    | None -> invalid_arg "Controller.host_activate: unknown selector"
  in
  let ep =
    match ep with Some e -> e | None -> host_alloc_ep t ~tile:a.a_tile ~act
  in
  (match activation_config cap with
  | Ok cfg -> apply_activation t ~a ~cap ~ep cfg
  | Error msg -> invalid_arg ("Controller.host_activate: " ^ msg));
  ep

(* Syscall channels: every activity gets a send gate to the controller's
   syscall receive gate (label = activity id) and a small reply receive
   gate. *)
let syscall_slot_size = 512

let host_setup_syscall_channel t ~act =
  let a = find_act t act in
  match a.syscall_eps with
  | Some pair -> pair
  | None ->
      let send_ep = host_alloc_ep t ~tile:a.a_tile ~act in
      let reply_ep = host_alloc_ep t ~tile:a.a_tile ~act in
      let dtu = Platform.dtu t.platform a.a_tile in
      Dtu.ext_config dtu ~ep:send_ep ~owner:act
        (Ep.send_config ~dst_tile:t.tile ~dst_ep:syscall_ep ~label:act
           ~max_msg_size:(syscall_slot_size - Msg.header_bytes) ~credits:1 ());
      Dtu.ext_config dtu ~ep:reply_ep ~owner:act
        (Ep.recv_config ~slots:2 ~slot_size:syscall_slot_size ());
      Hashtbl.replace t.ep_owners (a.a_tile, reply_ep) act;
      a.syscall_eps <- Some (send_ep, reply_ep);
      (send_ep, reply_ep)

let ep_owner t ~tile ~ep = Hashtbl.find_opt t.ep_owners (tile, ep)

let register_tm_rgate t ~tile ~ep = Hashtbl.replace t.tm_rgates tile ep

(* --- M3x machinery --- *)

let register_mx_stub t ~tile stub = Hashtbl.replace t.mx_stubs tile stub

let mx_tile_state t tile =
  match Hashtbl.find_opt t.mx_tiles tile with
  | Some s -> s
  | None ->
      let s =
        {
          cur = None;
          ready = Queue.create ();
          pending = Hashtbl.create 4;
          snapshots = Hashtbl.create 4;
          switching = false;
        }
      in
      Hashtbl.replace t.mx_tiles tile s;
      s

let mx_stub t tile =
  match Hashtbl.find_opt t.mx_stubs tile with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Controller: no M3x stub on tile %d" tile)

let snapshot_eps t st a =
  let dtu = Platform.dtu t.platform a.a_tile in
  let snap = List.map (fun ep -> (ep, Dtu.ext_read_ep dtu ~ep)) a.ep_list in
  List.iter (fun ep -> Dtu.ext_invalidate dtu ~ep) a.ep_list;
  Hashtbl.replace st.snapshots a.aid snap

let restore_eps t st a =
  let dtu = Platform.dtu t.platform a.a_tile in
  (match Hashtbl.find_opt st.snapshots a.aid with
  | Some snap ->
      List.iter
        (fun (ep, saved) -> Dtu.ext_restore_eps dtu ~first:ep [| saved |])
        snap
  | None -> ());
  Hashtbl.remove st.snapshots a.aid

let mx_register_act t ~act =
  let a = find_act t act in
  let st = mx_tile_state t a.a_tile in
  a.mx_registered <- true;
  snapshot_eps t st a;
  Queue.add act st.ready

let mx_current t ~tile =
  match Hashtbl.find_opt t.mx_tiles tile with Some s -> s.cur | None -> None


let pending_queue st aid =
  match Hashtbl.find_opt st.pending aid with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace st.pending aid q;
      q

(* Deliver queued slow-path messages into the (now live) endpoints of an
   activity, charging controller compute and the controller->tile
   transfer for each. *)
let rec deliver_all t ~tile ~dtu q k =
  match Queue.take_opt q with
  | None -> k ()
  | Some (ep, msg) ->
      charge t mx_deliver_cycles (fun () ->
          let started = Engine.now t.engine in
          Noc.send t.noc ~src:t.tile ~dst:tile
            ~bytes:(msg.Msg.size + Msg.header_bytes) ~on_delivered:(fun () ->
              add_busy t (Time.sub (Engine.now t.engine) started);
              (match Dtu.ext_inject dtu ~ep msg with
              | Ok () -> ()
              | Error _ -> ());
              deliver_all t ~tile ~dtu q k))

let rec mx_try_switch t tile_id ~k =
  let st = mx_tile_state t tile_id in
  if st.switching then k ()
  else
    let cur_act = Option.map (find_act t) st.cur in
    let cur_busy =
      match cur_act with Some a -> a.alive && not a.mx_blocked | None -> false
    in
    if cur_busy then k ()
    else
      match Queue.take_opt st.ready with
      | None -> k ()
      | Some next_id ->
          st.switching <- true;
          t.stats <- { t.stats with mx_switches = t.stats.mx_switches + 1 };
          let stub = mx_stub t tile_id in
          let save_phase k2 =
            match cur_act with
            | Some a when a.alive ->
                charge t mx_save_phase_cycles (fun () ->
                    stub.mx_save ~k:(fun () ->
                        ext_round_trip t ~dst:tile_id
                          ~bytes:(List.length a.ep_list * ep_save_bytes_per_ep)
                          ~apply:(fun () -> snapshot_eps t st a)
                          ~k:k2))
            | Some _ | None -> charge t (mx_save_phase_cycles / 4) k2
          in
          save_phase (fun () ->
              let b = find_act t next_id in
              charge t mx_restore_phase_cycles (fun () ->
                  ext_round_trip t ~dst:tile_id
                    ~bytes:(List.length b.ep_list * ep_save_bytes_per_ep)
                    ~apply:(fun () -> restore_eps t st b)
                    ~k:(fun () ->
                      st.cur <- Some next_id;
                      b.mx_blocked <- false;
                      let dtu = Platform.dtu t.platform tile_id in
                      let q = pending_queue st next_id in
                      deliver_all t ~tile:tile_id ~dtu q (fun () ->
                          st.switching <- false;
                          stub.mx_restore next_id ~k:(fun () ->
                              (* More ready work may have queued up. *)
                              mx_try_switch t tile_id ~k)))))

let mx_kick t ~tile = mx_try_switch t tile ~k:(fun () -> ())

let mx_make_ready t a =
  let st = mx_tile_state t a.a_tile in
  a.mx_blocked <- false;
  if st.cur <> Some a.aid && not (Queue.fold (fun f x -> f || x = a.aid) false st.ready)
  then Queue.add a.aid st.ready

let mx_notify_wake t ~act =
  let a = find_act t act in
  let st = mx_tile_state t a.a_tile in
  if st.cur = Some act && not st.switching then begin
    if a.mx_blocked then begin
      a.mx_blocked <- false;
      (mx_stub t a.a_tile).mx_restore act ~k:(fun () -> ())
    end
    else a.mx_wake_pending <- true
  end
  else begin
    a.mx_wake_pending <- true;
    mx_make_ready t a;
    mx_try_switch t a.a_tile ~k:(fun () -> ())
  end

(* --- crash recovery (M3v) --- *)

(* Reclaim send credits held against the dead activity's receive gates at
   every peer DTU.  The receiver will never return them; restoring the
   peers' full budgets lets them keep talking (to a restarted instance, or
   to observe EOF from an invalidated gate) instead of starving on credits
   that are gone for good. *)
let reclaim_credits_for t (a : act) ~k =
  let recv_eps =
    Hashtbl.fold
      (fun (tile, ep) owner acc ->
        if owner = a.aid then (tile, ep) :: acc else acc)
      t.ep_owners []
  in
  let tiles = Platform.processing_tiles t.platform @ [ t.tile ] in
  let rec per_ep = function
    | [] -> k ()
    | (dst_tile, dst_ep) :: rest ->
        let reclaimed =
          List.fold_left
            (fun acc tile ->
              acc
              + Dtu.ext_reclaim_credits
                  (Platform.dtu t.platform tile)
                  ~dst_tile ~dst_ep)
            0 tiles
        in
        if reclaimed > 0 then begin
          t.stats <-
            {
              t.stats with
              credits_reclaimed = t.stats.credits_reclaimed + reclaimed;
            };
          if Trace.on () then
            Trace.instant ~cat:"kernel" ~name:"credits_reclaimed" ~tile:t.tile
              ~act:a.aid ~ts:(Engine.now t.engine)
              ~args:[ ("ep", Trace.I dst_ep); ("credits", Trace.I reclaimed) ]
              ()
        end;
        charge t revoke_per_cap_cycles (fun () -> per_ep rest)
  in
  per_ep recv_eps

(* Full cleanup of a crashed (or exited) activity that will not come back:
   revoke every capability it still owns (cascading into anything derived
   from them), reclaim orphaned send credits at its peers, and invalidate
   all of its endpoints — partners' subsequent sends observe [Recv_gone]
   and surface it as EOF. *)
let teardown_act t (a : act) ~k =
  let root_caps =
    Hashtbl.fold (fun _ c acc -> if c.Cap.live then c :: acc else acc) a.caps []
  in
  let revoked_eps =
    List.concat_map
      (fun c ->
        let killed, eps = Cap.revoke c in
        List.iter
          (fun (c : Cap.t) ->
            match Hashtbl.find_opt t.acts c.Cap.owner with
            | Some owner -> Hashtbl.remove owner.caps c.Cap.sel
            | None -> ())
          killed;
        eps)
      root_caps
  in
  reclaim_credits_for t a ~k:(fun () ->
      let own = List.map (fun ep -> (a.a_tile, ep)) a.ep_list in
      let rec invalidate = function
        | [] ->
            a.ep_list <- [];
            a.syscall_eps <- None;
            k ()
        | (tile, ep) :: rest ->
            charge t revoke_per_cap_cycles (fun () ->
                ext_round_trip t ~dst:tile ~bytes:32
                  ~apply:(fun () ->
                    Dtu.ext_invalidate (Platform.dtu t.platform tile) ~ep;
                    Hashtbl.remove t.ep_owners (tile, ep))
                  ~k:(fun () -> invalidate rest))
      in
      invalidate (revoked_eps @ own))

(* Policy for a nonzero exit code: restart the activity in place if it is
   marked restartable and has budget left (its endpoints, capabilities and
   pending requests survive), otherwise tear it down. *)
let handle_crash t (a : act) ~code ~k =
  t.stats <- { t.stats with crashes = t.stats.crashes + 1 };
  if Trace.on () then
    Trace.instant ~cat:"kernel" ~name:"act_crash" ~tile:t.tile ~act:a.aid
      ~ts:(Engine.now t.engine)
      ~args:[ ("act", Trace.S a.name); ("code", Trace.I code) ]
      ();
  match Hashtbl.find_opt t.restart_hooks a.a_tile with
  | Some hook when a.restarts < a.max_restarts ->
      a.restarts <- a.restarts + 1;
      a.alive <- true;
      a.exit_code <- None;
      t.stats <- { t.stats with restarts = t.stats.restarts + 1 };
      if Trace.on () then
        Trace.instant ~cat:"kernel" ~name:"act_restart" ~tile:t.tile ~act:a.aid
          ~ts:(Engine.now t.engine)
          ~args:[ ("act", Trace.S a.name); ("try", Trace.I a.restarts) ]
          ();
      (* Requests the dead incarnation fetched but never answered leave
         their senders' credits and receive slots orphaned, exactly as a
         permanent death would — reclaim both, or a client blocks forever
         in send while retrying against the restarted instance.  Requests
         still queued survive and are served after the restart. *)
      reclaim_credits_for t a ~k:(fun () ->
          charge t restart_cycles (fun () ->
              ext_round_trip t ~dst:a.a_tile ~bytes:32
                ~apply:(fun () ->
                  let dtu = Platform.dtu t.platform a.a_tile in
                  List.iter
                    (fun ep -> ignore (Dtu.ext_release_fetched dtu ~ep))
                    a.ep_list;
                  (* Flush syscall replies the dead incarnation never
                     consumed: they would otherwise pair with the
                     successor's first syscall. *)
                  (match a.syscall_eps with
                  | Some (_, reply_ep) ->
                      let n = Dtu.ext_drain_recv dtu ~ep:reply_ep in
                      if n > 0 && Trace.on () then
                        Trace.instant ~cat:"kernel"
                          ~name:"stale_sys_replies_flushed" ~tile:t.tile
                          ~act:a.aid ~ts:(Engine.now t.engine)
                          ~args:[ ("count", Trace.I n) ]
                          ()
                  | None -> ());
                  hook a.aid)
                ~k))
  | Some _ | None -> teardown_act t a ~k

(* --- live activity migration (M3v) ---

   Controller-orchestrated, fault-tolerant protocol:

     prepare -> quiesce -> drain -> FLIP -> install -> resume

   [quiesce] asks the source runtime to park the activity at its next
   TMCall boundary and hand back an opaque image (program, continuation,
   address space).  [drain] charges the NoC round trips that read the
   endpoint state out and push the image to the target.  The FLIP is a
   single simulated instant: endpoint snapshots (with their queued
   messages and parked credit refunds), the TLB image and the ownership
   tables all move at once, and the vacated source slots get forwarding
   pointers so in-flight packets and late credit grants chase the
   activity.  Fault injection may abort the protocol at the phase
   boundaries {e before} the flip — the image is reinstalled on the
   source and the activity resumes as if nothing happened.  After the
   flip the protocol can only roll forward.  Either way every message is
   delivered exactly once and the system-wide credit total is unchanged
   (asserted below). *)

let register_mig_stub t ~tile stub = Hashtbl.replace t.mig_stubs tile stub

let mig_stub_of t tile =
  match Hashtbl.find_opt t.mig_stubs tile with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Controller: no migration stub on tile %d" tile)

let all_tiles t = List.init (Platform.tile_count t.platform) (fun i -> i)

(* System-wide credit total: send-endpoint balances plus refunds parked at
   invalid slots or batched at MPMC rings.  In-flight NoC packets are not
   counted, but the flip happens at one simulated instant, so they cancel
   out of the before/after comparison. *)
let credit_inventory t =
  List.fold_left
    (fun acc tile ->
      acc + Dtu.ext_credit_inventory (Platform.dtu t.platform tile))
    0 (all_tiles t)

let mig_trace t ~name ~(a : act) args =
  if Trace.on () then
    Trace.instant ~cat:"kernel" ~name ~tile:t.tile ~act:a.aid
      ~ts:(Engine.now t.engine) ~args ()

let mig_aborted t (a : act) ~phase =
  t.stats <- { t.stats with mig_aborts = t.stats.mig_aborts + 1 };
  mig_trace t ~name:"mig_abort" ~a [ ("phase", Trace.S phase) ]

(* The atomic endpoint flip.  Runs synchronously inside one engine
   callback: no simulated time passes between vacating the source slots
   and restoring them on the target, so the activity is never unreachable
   — at worst a packet pays one forwarding hop. *)
let mig_flip t (a : act) ~dst_tile ~eps =
  let src_tile = a.a_tile in
  let sdtu = Platform.dtu t.platform src_tile in
  let tdtu = Platform.dtu t.platform dst_tile in
  let before = credit_inventory t in
  let snaps =
    List.map
      (fun ep ->
        let saved = Dtu.ext_read_ep sdtu ~ep in
        let parked = Dtu.ext_take_parked_refund sdtu ~ep in
        (ep, saved, parked))
      eps
  in
  let tlb_entries = Tlb.entries_of_act (Dtu.tlb sdtu) a.aid in
  Dtu.tlb_invalidate_act sdtu a.aid;
  List.iter
    (fun (ep, _, _) ->
      Dtu.ext_invalidate sdtu ~ep;
      Dtu.ext_set_moved sdtu ~ep ~dst_tile ~dst_ep:ep)
    snaps;
  Dtu.ext_drop_unread sdtu ~act:a.aid;
  (* Same indices on the target: programs hold endpoint numbers in their
     closures, so migration preserves them (the target slots were checked
     Invalid before the protocol started). *)
  List.iter
    (fun (ep, saved, parked) ->
      Dtu.ext_park_refund tdtu ~ep parked;
      Dtu.ext_restore_eps tdtu ~first:ep [| saved |])
    snaps;
  ignore (Dtu.ext_seed_unread tdtu ~act:a.aid);
  List.iter
    (fun (vpage, (e : Tlb.entry)) ->
      Dtu.tlb_insert tdtu ~act:a.aid ~vpage ~ppage:e.Tlb.ppage ~perm:e.Tlb.perm)
    tlb_entries;
  (* Reserve the indices so the target's allocator never hands them out. *)
  t.ep_next.(dst_tile) <-
    max t.ep_next.(dst_tile) (1 + List.fold_left max (-1) eps);
  List.iter
    (fun ep ->
      match Hashtbl.find_opt t.ep_owners (src_tile, ep) with
      | Some owner when owner = a.aid ->
          Hashtbl.remove t.ep_owners (src_tile, ep);
          Hashtbl.replace t.ep_owners (dst_tile, ep) a.aid
      | Some _ | None -> ())
    eps;
  (* Future activations of send gates against the moved receive gates must
     resolve to the new location. *)
  Hashtbl.iter
    (fun _ (cap : Cap.t) ->
      match cap.Cap.obj with
      | Cap.Rgate rg -> (
          match rg.Cap.rg_loc with
          | Some (tl, ep) when tl = src_tile && List.mem ep eps ->
              rg.Cap.rg_loc <- Some (dst_tile, ep)
          | Some _ | None -> ())
      | Cap.Sgate _ | Cap.Mgate _ -> ())
    a.caps;
  (* Already-configured peer send gates are rewritten in place; the
     forwarding pointers only cover packets that left before this line. *)
  List.iter
    (fun tile ->
      ignore
        (Dtu.ext_retarget
           (Platform.dtu t.platform tile)
           ~old_tile:src_tile ~new_tile:dst_tile ~eps))
    (all_tiles t);
  a.a_tile <- dst_tile;
  let after = credit_inventory t in
  if after <> before then
    failwith
      (Printf.sprintf
         "Controller: migration of %s changed the credit total (%d -> %d)"
         a.name before after)

(* Pre-flip abort: reinstall the parked image on the source — its
   endpoints, TLB and unread state were never touched — and resume. *)
let mig_reinstall t (a : act) ~image ~parked_at ~phase ~k =
  mig_aborted t a ~phase;
  let sgate, rgate =
    match a.syscall_eps with
    | Some p -> p
    | None -> failwith "Controller: migrating activity has no syscall channel"
  in
  (mig_stub_of t a.a_tile).mig_install ~image ~sys_sgate:sgate ~sys_rgate:rgate;
  charge t mig_resume_cycles (fun () ->
      (mig_stub_of t a.a_tile).mig_resume ~act:a.aid;
      t.stats <-
        {
          t.stats with
          mig_downtime_ps =
            t.stats.mig_downtime_ps
            + Time.sub (Engine.now t.engine) parked_at;
        };
      t.mig_busy <- false;
      k (Error (Printf.sprintf "migration aborted (%s)" phase)))

let mig_commit t (a : act) ~dst_tile ~eps ~image ~parked_at ~k =
  charge t mig_flip_cycles (fun () ->
      mig_flip t a ~dst_tile ~eps;
      let sgate, rgate =
        match a.syscall_eps with
        | Some p -> p
        | None ->
            failwith "Controller: migrating activity has no syscall channel"
      in
      (mig_stub_of t dst_tile).mig_install ~image ~sys_sgate:sgate
        ~sys_rgate:rgate;
      charge t mig_resume_cycles (fun () ->
          ext_round_trip t ~dst:dst_tile ~bytes:64
            ~apply:(fun () -> (mig_stub_of t dst_tile).mig_resume ~act:a.aid)
            ~k:(fun () ->
              let downtime = Time.sub (Engine.now t.engine) parked_at in
              t.stats <-
                {
                  t.stats with
                  migrations = t.stats.migrations + 1;
                  mig_downtime_ps = t.stats.mig_downtime_ps + downtime;
                };
              mig_trace t ~name:"mig_done" ~a
                [ ("to", Trace.I dst_tile); ("downtime_ps", Trace.I downtime) ];
              t.mig_busy <- false;
              k (Ok ()))))

let mig_drain t (a : act) ~dst_tile ~eps ~image ~parked_at ~k =
  (* Read the endpoint state out of the source and push the image to the
     target; retransmit windows and credit grants already on the wire get
     this long to land (late ones chase the forwarding pointers). *)
  let save_bytes = 256 + (List.length eps * ep_save_bytes_per_ep) in
  ext_round_trip t ~dst:a.a_tile ~bytes:save_bytes
    ~apply:(fun () -> ())
    ~k:(fun () ->
      ext_round_trip t ~dst:dst_tile ~bytes:save_bytes
        ~apply:(fun () -> ())
        ~k:(fun () ->
          if
            Fault.on ()
            && Fault.mig_fate ~now:(Engine.now t.engine) ~tile:a.a_tile
                 ~act:a.aid ~phase:"drain"
          then mig_reinstall t a ~image ~parked_at ~phase:"drain" ~k
          else mig_commit t a ~dst_tile ~eps ~image ~parked_at ~k))

let mig_quiesce_phase t (a : act) ~dst_tile ~eps ~k =
  (mig_stub_of t a.a_tile).mig_quiesce ~act:a.aid ~k:(function
    | None ->
        (* The activity exited (or was killed by fault injection) before it
           reached a parkable boundary: nothing moved, nothing to restore —
           crash handling owns whatever happens to it next. *)
        mig_aborted t a ~phase:"quiesce";
        t.mig_busy <- false;
        k (Error "activity exited during quiesce")
    | Some image ->
        let parked_at = Engine.now t.engine in
        mig_trace t ~name:"mig_parked" ~a [];
        if
          Fault.on ()
          && Fault.mig_fate ~now:(Engine.now t.engine) ~tile:a.a_tile
               ~act:a.aid ~phase:"parked"
        then mig_reinstall t a ~image ~parked_at ~phase:"parked" ~k
        else mig_drain t a ~dst_tile ~eps ~image ~parked_at ~k)

let migrate t ~act ~dst_tile ~k =
  match Hashtbl.find_opt t.acts act with
  | None -> k (Error "unknown activity")
  | Some a ->
      if t.mode <> M3v then k (Error "migration requires M3v mode")
      else if t.mig_busy then k (Error "another migration is in flight")
      else if not a.alive then k (Error "activity is not alive")
      else if dst_tile = a.a_tile then k (Error "target is the source tile")
      else if not (Hashtbl.mem t.mig_stubs a.a_tile) then
        k (Error "no migration-capable runtime on source tile")
      else if not (Hashtbl.mem t.mig_stubs dst_tile) then
        k (Error "no migration-capable runtime on target tile")
      else begin
        let eps = List.sort_uniq compare a.ep_list in
        let tdtu = Platform.dtu t.platform dst_tile in
        let clash =
          List.exists
            (fun ep ->
              ep >= Dtu.ep_count tdtu
              ||
              match (Dtu.ext_read_ep tdtu ~ep).Ep.cfg with
              | Ep.Invalid -> false
              | Ep.Send _ | Ep.Recv _ | Ep.Mpmc_recv _ | Ep.Mem _ -> true)
            eps
        in
        if clash then k (Error "target endpoint slots are busy")
        else begin
          t.mig_busy <- true;
          mig_trace t ~name:"mig_start" ~a [ ("to", Trace.I dst_tile) ];
          charge t mig_prepare_cycles (fun () ->
              if
                Fault.on ()
                && Fault.mig_fate ~now:(Engine.now t.engine) ~tile:a.a_tile
                     ~act:a.aid ~phase:"prepare"
              then begin
                mig_aborted t a ~phase:"prepare";
                t.mig_busy <- false;
                k (Error "migration aborted (prepare)")
              end
              else mig_quiesce_phase t a ~dst_tile ~eps ~k)
        end
      end

(* --- syscall handling --- *)

let reply_sys t msg rep =
  let size = Protocol.sys_reply_size rep in
  Dtu.reply t.dtu ~recv_ep:syscall_ep ~to_msg:msg ~msg_size:size
    (Protocol.Sys_reply rep) ~k:(fun _ -> ())

let handle_sys t (msg : Msg.t) req ~k =
  t.stats <- { t.stats with syscalls = t.stats.syscalls + 1 };
  let requester = find_act t msg.Msg.label in
  let incarnation = requester.restarts in
  let finish rep =
    (* The requester may have crashed while this syscall was in flight; a
       reply sent now would sit in the reply gate until the restarted
       incarnation's first syscall pairs with it (and acts on a stale
       [Ok_ep]/[Ok_sel]).  Drop the reply instead, but still free the
       request's slot and return its send credit — the successor reuses
       the same syscall channel. *)
    if requester.alive && requester.restarts = incarnation then
      reply_sys t msg rep
    else begin
      ignore (Dtu.ack t.dtu ~ep:syscall_ep msg);
      if Trace.on () then
        Trace.instant ~cat:"kernel" ~name:"stale_sys_reply_dropped" ~tile:t.tile
          ~act:requester.aid ~ts:(Engine.now t.engine) ()
    end;
    k ()
  in
  match req with
  | Protocol.Noop -> finish Protocol.Ok_unit
  | Protocol.Alloc_mem { size; perm } ->
      let mem_tile, base = host_alloc_mem t ~size in
      let sel =
        host_new_mgate t ~act:requester.aid ~mem_tile ~base ~size ~perm
      in
      finish (Protocol.Ok_sel sel)
  | Protocol.Create_rgate { slots; slot_size } ->
      let sel = host_new_rgate t ~act:requester.aid ~slots ~slot_size in
      finish (Protocol.Ok_sel sel)
  | Protocol.Create_mpmc_rgate { slots; slot_size; ack_batch } ->
      let sel =
        host_new_mpmc_rgate t ~act:requester.aid ~slots ~slot_size ~ack_batch ()
      in
      finish (Protocol.Ok_sel sel)
  | Protocol.Create_sgate_for { target; rgate_sel; label; credits } -> (
      match find_cap t ~act:requester.aid ~sel:rgate_sel with
      | Some rcap when rcap.Cap.live -> (
          match rcap.Cap.obj with
          | Cap.Rgate rg ->
              let b = find_act t target in
              let sel = new_sel b in
              let cap =
                Cap.derive rcap ~sel ~owner:target
                  (Cap.Sgate { sg_rgate = rg; sg_label = label; sg_credits = credits })
              in
              put_cap b cap;
              finish (Protocol.Ok_sel sel)
          | Cap.Sgate _ | Cap.Mgate _ ->
              finish (Protocol.Sys_err "not a receive gate"))
      | Some _ | None -> finish (Protocol.Sys_err "unknown rgate selector"))
  | Protocol.Derive_mem_for { target; src_sel; off; len; perm } -> (
      match find_cap t ~act:requester.aid ~sel:src_sel with
      | Some mcap when mcap.Cap.live -> (
          let b = find_act t target in
          let sel = new_sel b in
          match Cap.derive_mem mcap ~sel ~owner:target ~off ~len ~perm with
          | Ok cap ->
              put_cap b cap;
              finish (Protocol.Ok_sel sel)
          | Error e -> finish (Protocol.Sys_err e))
      | Some _ | None -> finish (Protocol.Sys_err "unknown memory selector"))
  | Protocol.Activate { sel; ep } -> (
      match find_cap t ~act:requester.aid ~sel with
      | Some cap when cap.Cap.live -> (
          match activation_config cap with
          | Error e -> finish (Protocol.Sys_err e)
          | Ok cfg ->
              let a = requester in
              let ep =
                match ep with
                | Some e -> e
                | None -> host_alloc_ep t ~tile:a.a_tile ~act:a.aid
              in
              charge t activate_extra_cycles (fun () ->
                  ext_round_trip t ~dst:a.a_tile ~bytes:64
                    ~apply:(fun () -> apply_activation t ~a ~cap ~ep cfg)
                    ~k:(fun () -> finish (Protocol.Ok_ep ep))))
      | Some _ | None -> finish (Protocol.Sys_err "unknown selector"))
  | Protocol.Revoke { sel } -> (
      match find_cap t ~act:requester.aid ~sel with
      | Some cap when cap.Cap.live ->
          let killed, eps = Cap.revoke cap in
          (* Remove revoked capabilities from their owners' tables. *)
          List.iter
            (fun (c : Cap.t) ->
              match Hashtbl.find_opt t.acts c.Cap.owner with
              | Some owner -> Hashtbl.remove owner.caps c.Cap.sel
              | None -> ())
            killed;
          let rec invalidate = function
            | [] -> finish Protocol.Ok_unit
            | (tile, ep) :: rest ->
                charge t revoke_per_cap_cycles (fun () ->
                    ext_round_trip t ~dst:tile ~bytes:32
                      ~apply:(fun () ->
                        Dtu.ext_invalidate (Platform.dtu t.platform tile) ~ep;
                        Hashtbl.remove t.ep_owners (tile, ep))
                      ~k:(fun () -> invalidate rest))
          in
          invalidate eps
      | Some _ | None -> finish (Protocol.Sys_err "unknown selector"))
  | Protocol.Map_for { target; vpage; ppage; perm } -> (
      let b = find_act t target in
      match Hashtbl.find_opt t.tm_rgates b.a_tile with
      | None -> finish (Protocol.Sys_err "no TileMux on target tile")
      | Some tm_ep ->
          (* Forward the mapping request to the responsible TileMux; the
             reply to the pager is deferred until TileMux confirms, but the
             controller itself moves on (paper, section 4.3). *)
          let req_id = t.next_map_req in
          t.next_map_req <- req_id + 1;
          Hashtbl.replace t.pending_maps req_id msg;
          let tm_msg =
            Msg.make ~src_tile:t.tile ~src_act:invalid_act
              ~reply_to:(t.tile, syscall_ep) ~size:48
              (Protocol.Tm_map
                 {
                   tm_req_id = req_id;
                   tm_act = target;
                   tm_vpage = vpage;
                   tm_ppage = ppage;
                   tm_perm = perm;
                 })
          in
          let started = Engine.now t.engine in
          Noc.send t.noc ~src:t.tile ~dst:b.a_tile ~bytes:64
            ~on_delivered:(fun () ->
              add_busy t (Time.sub (Engine.now t.engine) started);
              let dtu = Platform.dtu t.platform b.a_tile in
              (match Dtu.ext_inject dtu ~ep:tm_ep tm_msg with
              | Ok () -> ()
              | Error _ ->
                  (* TileMux gate full: fail the pager's request. *)
                  Hashtbl.remove t.pending_maps req_id;
                  reply_sys t msg (Protocol.Sys_err "TileMux gate full"));
              k ()))
  | Protocol.Migrate { mig_tile } ->
      if t.mode <> M3v then finish (Protocol.Sys_err "migration requires M3v")
      else if t.mig_busy then
        finish (Protocol.Sys_err "another migration is in flight")
      else if
        mig_tile < 0
        || mig_tile >= Platform.tile_count t.platform
        || not (Hashtbl.mem t.mig_stubs mig_tile)
      then finish (Protocol.Sys_err "no migration-capable runtime on target")
      else if mig_tile = requester.a_tile then
        finish (Protocol.Sys_err "already on target tile")
      else begin
        (* Start the protocol, then reply: the requester parks at its next
           TMCall boundary (typically the receive for this very reply — the
           reply either lands before the flip and migrates inside the
           endpoint snapshot, or after it and chases the forwarding
           pointer).  The protocol runs concurrently with the dispatcher:
           holding the single-threaded controller for the whole migration
           could deadlock against a pager round trip the activity still
           needs before it can park. *)
        migrate t ~act:requester.aid ~dst_tile:mig_tile ~k:(fun _ -> ());
        finish Protocol.Ok_unit
      end
  | Protocol.Act_exit { code } ->
      requester.alive <- false;
      requester.exit_code <- Some code;
      (* One-way: the activity is gone, nobody to reply to. *)
      ignore (Dtu.ack t.dtu ~ep:syscall_ep msg);
      (match t.mode with
      | M3x when requester.mx_registered ->
          let st = mx_tile_state t requester.a_tile in
          if st.cur = Some requester.aid then st.cur <- None;
          mx_try_switch t requester.a_tile ~k
      | M3v when code <> 0 -> handle_crash t requester ~code ~k
      | M3x | M3v -> k ())

let handle_tm_map_done t (msg : Msg.t) ~req_id ~k =
  ignore (Dtu.ack t.dtu ~ep:syscall_ep msg);
  (match Hashtbl.find_opt t.pending_maps req_id with
  | Some pager_msg ->
      Hashtbl.remove t.pending_maps req_id;
      reply_sys t pager_msg Protocol.Ok_unit
  | None -> ());
  k ()

let handle_mx t (msg : Msg.t) ~k =
  let sender = find_act t msg.Msg.label in
  ignore (Dtu.ack t.dtu ~ep:syscall_ep msg);
  match msg.Msg.data with
  | Protocol.Mx_wake ->
      charge t (mx_fwd_cycles / 2) (fun () ->
          let a = sender in
          let st = mx_tile_state t a.a_tile in
          if st.cur = Some a.aid && not st.switching then begin
            if a.mx_blocked then begin
              a.mx_blocked <- false;
              (mx_stub t a.a_tile).mx_restore a.aid ~k:(fun () -> ())
            end
            else a.mx_wake_pending <- true;
            k ()
          end
          else begin
            a.mx_wake_pending <- true;
            mx_make_ready t a;
            mx_try_switch t a.a_tile ~k
          end)
  | Protocol.Mx_block ->
      charge t (mx_fwd_cycles / 2) (fun () ->
          if sender.mx_wake_pending then begin
            sender.mx_wake_pending <- false;
            mx_notify_wake t ~act:sender.aid;
            mx_try_switch t sender.a_tile ~k
          end
          else begin
            sender.mx_blocked <- true;
            mx_try_switch t sender.a_tile ~k
          end)
  | Protocol.Mx_yield ->
      charge t (mx_fwd_cycles / 2) (fun () ->
          (* The yielder goes to the back of its tile's queue; it counts as
             blocked so the switch machinery may take it off the core, but
             it is immediately runnable again. *)
          let st = mx_tile_state t sender.a_tile in
          sender.mx_blocked <- true;
          if not (Queue.fold (fun f x -> f || x = sender.aid) false st.ready)
          then Queue.add sender.aid st.ready;
          mx_try_switch t sender.a_tile ~k)
  | Protocol.Mx_fwd { fwd_dst_tile; fwd_dst_ep; fwd; fwd_block } ->
      t.stats <- { t.stats with mx_forwards = t.stats.mx_forwards + 1 };
      charge t mx_fwd_cycles (fun () ->
          if fwd_block then sender.mx_blocked <- true;
          (* After handling the forward, the sender's tile may need a switch
             too (the sender just blocked); the controller stays busy for
             the whole sequence, which is exactly M3x's bottleneck. *)
          let then_switch_sender () =
            if fwd_block then mx_try_switch t sender.a_tile ~k else k ()
          in
          match ep_owner t ~tile:fwd_dst_tile ~ep:fwd_dst_ep with
          | None ->
              (* Unknown destination: drop the message. *)
              then_switch_sender ()
          | Some recipient_id ->
              let recipient = find_act t recipient_id in
              let st = mx_tile_state t fwd_dst_tile in
              if st.cur = Some recipient_id && not st.switching then begin
                (* Endpoints are live: inject directly and wake locally. *)
                let dtu = Platform.dtu t.platform fwd_dst_tile in
                let was_blocked = recipient.mx_blocked in
                recipient.mx_blocked <- false;
                let q = Queue.create () in
                Queue.add (fwd_dst_ep, fwd) q;
                deliver_all t ~tile:fwd_dst_tile ~dtu q (fun () ->
                    if was_blocked then
                      (mx_stub t fwd_dst_tile).mx_restore recipient_id
                        ~k:(fun () -> ());
                    then_switch_sender ())
              end
              else begin
                Queue.add (fwd_dst_ep, fwd) (pending_queue st recipient_id);
                mx_make_ready t recipient;
                mx_try_switch t fwd_dst_tile ~k:(fun () ->
                    if fwd_block && sender.a_tile <> fwd_dst_tile then
                      mx_try_switch t sender.a_tile ~k
                    else k ())
              end)
  | _ -> k ()

(* --- dispatcher --- *)

let req_name (data : Msg.data) =
  match data with
  | Protocol.Sys req -> (
      match req with
      | Protocol.Noop -> "sys/noop"
      | Protocol.Alloc_mem _ -> "sys/alloc_mem"
      | Protocol.Create_rgate _ -> "sys/create_rgate"
      | Protocol.Create_mpmc_rgate _ -> "sys/create_mpmc_rgate"
      | Protocol.Create_sgate_for _ -> "sys/create_sgate_for"
      | Protocol.Derive_mem_for _ -> "sys/derive_mem_for"
      | Protocol.Activate _ -> "sys/activate"
      | Protocol.Revoke _ -> "sys/revoke"
      | Protocol.Map_for _ -> "sys/map_for"
      | Protocol.Act_exit _ -> "sys/act_exit"
      | Protocol.Migrate _ -> "sys/migrate")
  | Protocol.Tm_map_done _ -> "tm_map_done"
  | Protocol.Mx_fwd _ -> "mx_fwd"
  | Protocol.Mx_block -> "mx_block"
  | Protocol.Mx_yield -> "mx_yield"
  | Protocol.Mx_wake -> "mx_wake"
  | _ -> "unknown"

let rec dispatch t =
  if not t.busy then
    match Dtu.fetch t.dtu ~ep:syscall_ep with
    | Ok (Some msg) ->
        t.busy <- true;
        if Metrics.on () then
          Metrics.counter_incr ~name:"kernel/requests" ~tile:t.tile
            ~cat:(req_name msg.Msg.data) ();
        let k =
          let k () =
            t.busy <- false;
            dispatch t
          in
          if not (Trace.on ()) then k
          else begin
            (* Span covers the whole controller-side handling, including
               the charged processing time and any nested forwarding. *)
            let ts = Engine.now t.engine in
            let name = req_name msg.Msg.data in
            fun () ->
              let dur = Time.sub (Engine.now t.engine) ts in
              Trace.complete ~cat:"kernel" ~name ~tile:t.tile
                ~act:msg.Msg.src_act ~ts ~dur
                ~args:[ ("src_tile", Trace.I msg.Msg.src_tile) ]
                ();
              Trace.latency_int "kernel/syscall" dur;
              k ()
          end
        in
        charge t syscall_cycles (fun () ->
            match msg.Msg.data with
            | Protocol.Sys req -> handle_sys t msg req ~k
            | Protocol.Tm_map_done { tm_req_id } ->
                handle_tm_map_done t msg ~req_id:tm_req_id ~k
            | Protocol.Mx_fwd _ | Protocol.Mx_block | Protocol.Mx_yield
            | Protocol.Mx_wake ->
                handle_mx t msg ~k
            | _ ->
                (* Unknown payload: acknowledge and move on. *)
                ignore (Dtu.ack t.dtu ~ep:syscall_ep msg);
                k ())
    | Ok None | Error _ -> ()

let create ~mode ~platform ~tile () =
  let engine = Platform.engine platform in
  let dtu = Platform.dtu platform tile in
  let core = Platform.core_exn platform tile in
  let mem_next =
    List.map (fun mtile -> (mtile, ref 0)) (Platform.memory_tiles platform)
  in
  let t =
    {
      mode;
      platform;
      tile;
      engine;
      noc = Platform.noc platform;
      dtu;
      core;
      acts = Hashtbl.create 32;
      next_act = 0;
      ep_next = Array.make (Platform.tile_count platform) 1;
      mem_next;
      ep_owners = Hashtbl.create 64;
      mx_stubs = Hashtbl.create 8;
      mig_stubs = Hashtbl.create 8;
      mig_busy = false;
      mx_tiles = Hashtbl.create 8;
      tm_rgates = Hashtbl.create 8;
      restart_hooks = Hashtbl.create 8;
      pending_maps = Hashtbl.create 8;
      next_map_req = 0;
      busy = false;
      stats = empty_stats;
    }
  in
  (* Endpoint 0 of the controller tile is the syscall receive gate. *)
  Dtu.ext_config dtu ~ep:syscall_ep ~owner:Dtu_types.invalid_act
    (Ep.recv_config ~slots:256 ~slot_size:syscall_slot_size ());
  t.ep_next.(tile) <- 1;
  Dtu.set_msg_arrived dtu (fun _ -> dispatch t);
  t
