type sys_req =
  | Noop
  | Alloc_mem of { size : int; perm : M3v_dtu.Dtu_types.perm }
  | Create_rgate of { slots : int; slot_size : int }
  | Create_mpmc_rgate of { slots : int; slot_size : int; ack_batch : int }
  | Create_sgate_for of {
      target : M3v_dtu.Dtu_types.act_id;
      rgate_sel : int;
      label : int;
      credits : int;
    }
  | Derive_mem_for of {
      target : M3v_dtu.Dtu_types.act_id;
      src_sel : int;
      off : int;
      len : int;
      perm : M3v_dtu.Dtu_types.perm;
    }
  | Activate of { sel : int; ep : int option }
  | Revoke of { sel : int }
  | Map_for of {
      target : M3v_dtu.Dtu_types.act_id;
      vpage : int;
      ppage : int;
      perm : M3v_dtu.Dtu_types.perm;
    }
  | Act_exit of { code : int }
  | Migrate of { mig_tile : int }

type sys_reply = Ok_unit | Ok_sel of int | Ok_ep of int | Sys_err of string

type M3v_dtu.Msg.data +=
  | Sys of sys_req
  | Sys_reply of sys_reply
  | Mx_fwd of {
      fwd_dst_tile : int;
      fwd_dst_ep : int;
      fwd : M3v_dtu.Msg.t;
      fwd_block : bool;
    }
  | Mx_block
  | Mx_yield
  | Mx_wake
  | Tm_map of {
      tm_req_id : int;
      tm_act : M3v_dtu.Dtu_types.act_id;
      tm_vpage : int;
      tm_ppage : int;
      tm_perm : M3v_dtu.Dtu_types.perm;
    }
  | Tm_map_done of { tm_req_id : int }

let () =
  M3v_sim.Checkpoint.register_exts
    [
      [%extension_constructor Sys];
      [%extension_constructor Sys_reply];
      [%extension_constructor Mx_fwd];
      [%extension_constructor Mx_block];
      [%extension_constructor Mx_yield];
      [%extension_constructor Mx_wake];
      [%extension_constructor Tm_map];
      [%extension_constructor Tm_map_done];
    ]

let sys_req_size = function
  | Noop -> 8
  | Alloc_mem _ -> 24
  | Create_rgate _ -> 24
  | Create_mpmc_rgate _ -> 32
  | Create_sgate_for _ -> 40
  | Derive_mem_for _ -> 48
  | Activate _ -> 24
  | Revoke _ -> 16
  | Map_for _ -> 40
  | Act_exit _ -> 16
  | Migrate _ -> 16

let sys_reply_size = function
  | Ok_unit -> 8
  | Ok_sel _ | Ok_ep _ -> 16
  | Sys_err s -> 8 + String.length s

let pp_sys_req fmt = function
  | Noop -> Format.pp_print_string fmt "noop"
  | Alloc_mem { size; _ } -> Format.fprintf fmt "alloc_mem(%d)" size
  | Create_rgate { slots; slot_size } ->
      Format.fprintf fmt "create_rgate(%dx%d)" slots slot_size
  | Create_mpmc_rgate { slots; slot_size; ack_batch } ->
      Format.fprintf fmt "create_mpmc_rgate(%dx%d, batch%d)" slots slot_size
        ack_batch
  | Create_sgate_for { target; rgate_sel; _ } ->
      Format.fprintf fmt "create_sgate_for(act%d, sel%d)" target rgate_sel
  | Derive_mem_for { target; src_sel; off; len; _ } ->
      Format.fprintf fmt "derive_mem_for(act%d, sel%d, +%#x, %#x)" target src_sel
        off len
  | Activate { sel; ep } ->
      Format.fprintf fmt "activate(sel%d%s)" sel
        (match ep with Some e -> Printf.sprintf ", ep%d" e | None -> "")
  | Revoke { sel } -> Format.fprintf fmt "revoke(sel%d)" sel
  | Map_for { target; vpage; ppage; _ } ->
      Format.fprintf fmt "map_for(act%d, v%#x -> p%#x)" target vpage ppage
  | Act_exit { code } -> Format.fprintf fmt "exit(%d)" code
  | Migrate { mig_tile } -> Format.fprintf fmt "migrate(tile%d)" mig_tile

let pp_sys_reply fmt = function
  | Ok_unit -> Format.pp_print_string fmt "ok"
  | Ok_sel s -> Format.fprintf fmt "ok(sel%d)" s
  | Ok_ep e -> Format.fprintf fmt "ok(ep%d)" e
  | Sys_err e -> Format.fprintf fmt "err(%s)" e
